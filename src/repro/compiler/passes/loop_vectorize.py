"""The loop vectorizer (analysis stage).

Finds natural loops, identifies induction variables, and computes trip
counts — the analysis GCC's vectorizer performs before deciding to
vectorize.  The paper's GCC #111820 hang lives here: a loop whose counter
starts at a compile-time 0 and decreases indefinitely makes the trip-count
computation freeze.  The pass reports its findings through the checkpoint
hook; the seeded-bug registry decides whether to fire.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.ir import (
    BinOp, Br, GlobalAddr, ImmInt, IRFunction, Load, LocalAddr, Store, Temp,
)
from repro.compiler.passes.common import OptContext


@dataclass
class LoopInfo:
    head: str
    body: list[str]
    induction_slot: str | None = None
    step: int | None = None
    init: int | None = None
    global_stores: int = 0
    exit_compare: str | None = None


def _find_loops(fn: IRFunction) -> list[LoopInfo]:
    order = {b.label: i for i, b in enumerate(fn.blocks)}
    preds = fn.predecessors()
    loops = []
    for head in fn.blocks:
        latches = [
            p
            for p in preds.get(head.label, [])
            if order.get(p, -1) >= order[head.label]
        ]
        if not latches:
            continue
        last = max(order[p] for p in latches)
        body = [b.label for b in fn.blocks[order[head.label] : last + 1]]
        loops.append(LoopInfo(head.label, body))
    return loops


def _analyze_induction(fn: IRFunction, loop: LoopInfo) -> None:
    slot_of: dict[int, str] = {}
    for instr in fn.instructions():
        if isinstance(instr, LocalAddr):
            slot_of[instr.dst.index] = instr.slot

    body_blocks = [b for b in fn.blocks if b.label in loop.body]
    loaded: dict[int, str] = {}
    updated: dict[int, tuple[str, int]] = {}  # new temp -> (slot, step)
    for block in body_blocks:
        for instr in block.instrs:
            if isinstance(instr, Load) and isinstance(instr.ptr, Temp):
                slot = slot_of.get(instr.ptr.index)
                if slot is not None:
                    loaded[instr.dst.index] = slot
            elif isinstance(instr, BinOp) and instr.op in ("+", "-"):
                if (
                    isinstance(instr.lhs, Temp)
                    and instr.lhs.index in loaded
                    and isinstance(instr.rhs, ImmInt)
                ):
                    step = instr.rhs.value if instr.op == "+" else -instr.rhs.value
                    updated[instr.dst.index] = (loaded[instr.lhs.index], step)
            elif isinstance(instr, Store) and isinstance(instr.ptr, Temp):
                slot = slot_of.get(instr.ptr.index)
                if (
                    slot is not None
                    and isinstance(instr.value, Temp)
                    and instr.value.index in updated
                    and updated[instr.value.index][0] == slot
                ):
                    loop.induction_slot = slot
                    loop.step = updated[instr.value.index][1]
            elif isinstance(instr, Store) and isinstance(instr.ptr, Temp):
                pass
            if isinstance(instr, Store):
                # Count stores whose address chain roots at a global.
                root = instr.ptr
                if isinstance(root, Temp):
                    loop.global_stores += _roots_at_global(fn, root)

    # The exit condition: the head's Br on the updated value means an
    # implicit `!= 0` test (while (--n) lowering); an explicit compare is
    # recorded by its opcode.
    head = fn.block_map().get(loop.head)
    if head is not None and isinstance(head.terminator, Br):
        cond = head.terminator.cond
        if isinstance(cond, Temp) and cond.index in updated:
            loop.exit_compare = "ne0"
        else:
            for instr in head.instrs:
                if isinstance(instr, BinOp) and instr.dest() == cond:
                    loop.exit_compare = instr.op
                    break

    # Initial value: a constant store to the induction slot before the loop.
    if loop.induction_slot is not None:
        for block in fn.blocks:
            if block.label in loop.body:
                break
            for instr in block.instrs:
                if (
                    isinstance(instr, Store)
                    and isinstance(instr.ptr, Temp)
                    and slot_of.get(instr.ptr.index) == loop.induction_slot
                    and isinstance(instr.value, ImmInt)
                ):
                    loop.init = instr.value.value


def _roots_at_global(fn: IRFunction, temp: Temp) -> int:
    """1 if the pointer temp is (transitively) a GlobalAddr, else 0."""
    defs = {}
    for instr in fn.instructions():
        dst = instr.dest()
        if dst is not None:
            defs[dst.index] = instr
    seen = set()
    current = temp
    while isinstance(current, Temp) and current.index not in seen:
        seen.add(current.index)
        d = defs.get(current.index)
        if isinstance(d, GlobalAddr):
            return 1
        base = getattr(d, "base", None)
        if base is None:
            return 0
        current = base
    return 0


def loop_vectorize(fn: IRFunction, ctx: OptContext) -> bool:
    loops = _find_loops(fn)
    for loop in loops:
        _analyze_induction(fn, loop)
        ctx.cov.hit("opt:vect:loop", (loop.step, loop.exit_compare))
        ctx.stats.bump("loops_analyzed")
        if loop.induction_slot is None:
            ctx.cov.hit("opt:vect:no_induction", len(loop.body) > 3)
            continue
        downward_from_zero = (
            loop.step is not None
            and loop.step < 0
            and loop.init == 0
            and loop.exit_compare == "ne0"
        )
        features = {
            "vect_loops": 1,
            "vect_downward_zero_trip": int(downward_from_zero),
            "vect_global_store_chain": int(loop.global_stores >= 4),
            "vect_step": loop.step or 0,
        }
        ctx.stats.bump("vectorizable", int(loop.global_stores >= 4))
        ctx.check("opt:loop_vectorize:trip_count", features)
        ctx.cov.hit("opt:vect:induction", (loop.step, loop.global_stores >= 4))
    return False
