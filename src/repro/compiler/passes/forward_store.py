"""Store-to-load forwarding for stack slots (a light mem2reg).

Within a block, a load from a slot that was just stored to — with no
intervening call, memcpy, or store through an unknown pointer — is replaced
by the stored value.  Volatile accesses are never forwarded.

A store/load round trip through a narrow slot is *not* the identity: the
store truncates to the slot's width and the signed load sign-extends back
(``char c = 242; c == -14``).  Forwarding the raw stored operand would skip
that narrowing, so integer forwards go through a same-type signed ``Cast``
(folded away by const_fold when the operand is an immediate), and ``f32``
slots — where the store rounds a double to float32 — are never forwarded.
"""

from __future__ import annotations

from repro.compiler.ir import (
    Call, Cast, ImmInt, IRFunction, IRType, Load, LocalAddr, Memcpy, Store,
    Temp,
)
from repro.compiler.passes.common import OptContext, replace_uses


def _wrap(value: int, ty: IRType) -> int:
    bits = ty.bits
    value &= (1 << bits) - 1
    if value >= (1 << (bits - 1)):
        value -= 1 << bits
    return value


def forward_store(fn: IRFunction, ctx: OptContext) -> bool:
    changed = False
    mapping = {}
    for block in fn.blocks:
        # slot name -> last stored operand
        known: dict[str, object] = {}
        slot_of_temp: dict[int, str] = {}
        kept = []
        for instr in block.instrs:
            instr.replace_operands(mapping)
            if isinstance(instr, LocalAddr):
                slot_of_temp[instr.dst.index] = instr.slot
                kept.append(instr)
                continue
            if isinstance(instr, Store):
                slot = (
                    slot_of_temp.get(instr.ptr.index)
                    if isinstance(instr.ptr, Temp)
                    else None
                )
                if slot is None or instr.volatile:
                    known.clear()  # store through an unknown pointer
                else:
                    known[slot] = (instr.value, instr.ty)
                kept.append(instr)
                continue
            if isinstance(instr, Load) and not instr.volatile:
                slot = (
                    slot_of_temp.get(instr.ptr.index)
                    if isinstance(instr.ptr, Temp)
                    else None
                )
                if slot is not None and slot in known:
                    value, ty = known[slot]
                    if ty == instr.ty and ty is not IRType.F32:
                        if ty.is_int and isinstance(value, ImmInt):
                            mapping[instr.dst] = ImmInt(_wrap(value.value, ty))
                        elif ty.is_int:
                            kept.append(
                                Cast(
                                    dst=instr.dst,
                                    src=value,
                                    from_ty=ty,
                                    to_ty=ty,
                                    signed=True,
                                )
                            )
                        else:  # ptr / f64 round-trip the slot unchanged
                            mapping[instr.dst] = value
                        ctx.cov.hit("opt:fwdstore", instr.ty)
                        ctx.stats.bump("stores_forwarded")
                        changed = True
                        continue
                kept.append(instr)
                continue
            if isinstance(instr, (Call, Memcpy)):
                known.clear()
            kept.append(instr)
        block.instrs = kept
    replace_uses(fn, mapping)
    return changed
