"""Store-to-load forwarding for stack slots (a light mem2reg).

Within a block, a load from a slot that was just stored to — with no
intervening call, memcpy, or store through an unknown pointer — is replaced
by the stored value.  Volatile accesses are never forwarded.
"""

from __future__ import annotations

from repro.compiler.ir import (
    Call, IRFunction, Load, LocalAddr, Memcpy, Store, Temp,
)
from repro.compiler.passes.common import OptContext, replace_uses


def forward_store(fn: IRFunction, ctx: OptContext) -> bool:
    changed = False
    mapping = {}
    for block in fn.blocks:
        # slot name -> last stored operand
        known: dict[str, object] = {}
        slot_of_temp: dict[int, str] = {}
        kept = []
        for instr in block.instrs:
            instr.replace_operands(mapping)
            if isinstance(instr, LocalAddr):
                slot_of_temp[instr.dst.index] = instr.slot
                kept.append(instr)
                continue
            if isinstance(instr, Store):
                slot = (
                    slot_of_temp.get(instr.ptr.index)
                    if isinstance(instr.ptr, Temp)
                    else None
                )
                if slot is None or instr.volatile:
                    known.clear()  # store through an unknown pointer
                else:
                    known[slot] = (instr.value, instr.ty)
                kept.append(instr)
                continue
            if isinstance(instr, Load) and not instr.volatile:
                slot = (
                    slot_of_temp.get(instr.ptr.index)
                    if isinstance(instr.ptr, Temp)
                    else None
                )
                if slot is not None and slot in known:
                    value, ty = known[slot]
                    if ty == instr.ty:
                        mapping[instr.dst] = value
                        ctx.cov.hit("opt:fwdstore", instr.ty)
                        ctx.stats.bump("stores_forwarded")
                        changed = True
                        continue
                kept.append(instr)
                continue
            if isinstance(instr, (Call, Memcpy)):
                known.clear()
            kept.append(instr)
        block.instrs = kept
    replace_uses(fn, mapping)
    return changed
