"""A small function inliner.

Inlines calls to leaf functions whose body is a single block with no stack
slots (typical accessors after earlier optimization).  Temps of the callee
are renumbered into the caller's space.
"""

from __future__ import annotations

import copy

from repro.compiler.ir import (
    Call, Cast, ImmInt, IRFunction, IRModule, IRType, Ret, Temp,
)
from repro.compiler.passes.common import OptContext

#: Upper bound on the callee size we are willing to inline.
MAX_INLINE_INSTRS = 12


def _inlinable(fn: IRFunction) -> bool:
    if len(fn.blocks) != 1 or fn.slots:
        return False
    if "noinline" in " ".join(fn.attributes):
        return False
    block = fn.blocks[0]
    if len(block.instrs) > MAX_INLINE_INSTRS:
        return False
    if not isinstance(block.terminator, Ret):
        return False
    return all(not isinstance(i, Call) for i in block.instrs)


def _max_temp(fn: IRFunction) -> int:
    best = 0
    for instr in fn.instructions():
        dst = instr.dest()
        if dst is not None:
            best = max(best, dst.index)
        for op in instr.operands():
            if isinstance(op, Temp):
                best = max(best, op.index)
    return best


def inline_candidates(module: IRModule) -> dict[str, IRFunction]:
    """The module's inlinable callees, keyed by name (computed up front)."""
    return {name: fn for name, fn in module.functions.items() if _inlinable(fn)}


def inline_small_functions(module: IRModule, ctx: OptContext) -> bool:
    candidates = inline_candidates(module)
    if not candidates:
        return False
    changed = False
    for caller in module.functions.values():
        changed |= inline_into_caller(caller, candidates, ctx)
    return changed


def inline_into_caller(
    caller: IRFunction, candidates: dict[str, IRFunction], ctx: OptContext
) -> bool:
    """Inline candidate callees into one caller (the per-caller loop body)."""
    changed = False
    next_temp = _max_temp(caller) + 1
    for block in caller.blocks:
        new_instrs = []
        for instr in block.instrs:
            if not (
                isinstance(instr, Call)
                and instr.callee in candidates
                and instr.callee != caller.name
            ):
                new_instrs.append(instr)
                continue
            callee = candidates[instr.callee]
            remap: dict[int, Temp] = {}

            def temp_for(index: int) -> Temp:
                nonlocal next_temp
                if index not in remap:
                    remap[index] = Temp(next_temp)
                    next_temp += 1
                return remap[index]

            # Parameter sentinels map to the call's argument operands.
            arg_map = {
                -(i + 1): arg for i, arg in enumerate(instr.args)
            }
            ret_value = None
            for callee_instr in callee.blocks[0].instrs:
                cloned = copy.deepcopy(callee_instr)
                mapping = {}
                for op in cloned.operands():
                    if isinstance(op, Temp):
                        if op.index in arg_map:
                            mapping[op] = arg_map[op.index]
                        else:
                            mapping[op] = temp_for(op.index)
                cloned.replace_operands(mapping)
                if isinstance(cloned, Ret):
                    ret_value = cloned.value
                    break
                dst = cloned.dest()
                if dst is not None:
                    new_dst = temp_for(dst.index)
                    _set_dest(cloned, new_dst)
                new_instrs.append(cloned)
            if instr.dst is not None:
                src = ret_value if ret_value is not None else ImmInt(0)
                ty = instr.ret_ty if instr.ret_ty is not IRType.VOID else IRType.I64
                new_instrs.append(Cast(instr.dst, src, ty, ty))
            ctx.cov.hit("opt:inline", instr.callee == "main")
            ctx.stats.bump("inlined")
            changed = True
        block.instrs = new_instrs
    return changed


def _set_dest(instr, new_dst: Temp) -> None:
    for attr in ("dst",):
        if hasattr(instr, attr):
            setattr(instr, attr, new_dst)
            return
