"""The fused -O1 fixpoint round: one walk instead of five.

:func:`fused_local_opt` is a drop-in replacement for
:func:`repro.compiler.passes.local_opt`.  Each round of the sequential loop
runs const_fold, simplify_cfg, forward_store, cse, and dce as five full
traversals of the function, four of which end in a whole-function
``replace_uses`` sweep.  The fused round keeps the *decision sequence* of
those passes — every coverage hit and every stats bump fires for the same
instruction in the same order-insensitive totals — while traversing the
function only three times (fold, forward+cse combined, dce) and rewriting
uses once.

Why this is exact and not approximate:

* Temps are single-assignment and defs precede uses in block order, so a
  mapping entry created at walk position *p* can only affect operands whose
  defining instruction lies at or after *p*.  Applying the combined mapping
  per-instruction during the walk therefore resolves operands to exactly the
  state the sequential pass composition (fold ∘ forward ∘ cse) produces.
* The mappings of the individual passes compose by *chaining*: const_fold
  may map ``t3 → 7`` while cse later maps ``t9 → t3``.  The sequential
  pipeline applies these in separate ``replace_uses`` sweeps; the fused walk
  uses :class:`_ChainMap`, whose lookups chase chains transitively, so one
  sweep lands on the same operands.
* ``simplify_cfg`` reads only block labels and terminator targets — never
  value operands — so deferring const_fold's use-rewrite past it changes
  nothing it observes.
* store-to-load forwarding and CSE never interact destructively in one
  walk: forwarding decisions read slot state (``LocalAddr``/``Store``
  bookkeeping), CSE decisions read the pure-instruction key, and both see
  operands identically resolved (previous point).

The equivalence is enforced three ways: the property test in
``tests/test_session.py`` diffs IR/coverage/stats against the sequential
pipeline over the mutator corpus, ``paranoid`` mode cross-checks every
fused compile against a cold sequential one in CI, and the four-arm
throughput bench asserts identical final coverage and crash pools.
"""

from __future__ import annotations

from repro.compiler.ir import (
    Call, Cast, ImmInt, IRFunction, IRType, Load, LocalAddr, Memcpy, Store,
    Temp,
)
from repro.compiler.passes.common import OptContext, replace_uses
from repro.compiler.passes.const_fold import const_fold
from repro.compiler.passes.cse import _key
from repro.compiler.passes.dce import dce
from repro.compiler.passes.forward_store import _wrap
from repro.compiler.passes.simplify_cfg import simplify_cfg

_MISSING = object()


class _ChainMap(dict):
    """An operand mapping whose lookups resolve chains transitively.

    ``a → b, b → c`` behaves as ``a → c``, which is what two sequential
    ``replace_uses`` sweeps over separate per-pass mappings would produce.
    Chains are finite because every key is the (single-assignment) dest of
    a removed instruction; the cycle guard is purely defensive.
    """

    def get(self, key, default=None):
        value = dict.get(self, key, _MISSING)
        if value is _MISSING:
            return default
        seen = None
        while True:
            nxt = dict.get(self, value, _MISSING)
            if nxt is _MISSING:
                return value
            if seen is None:
                seen = {key}
            if value in seen:  # pragma: no cover - defensive
                return value
            seen.add(value)
            value = nxt

    def __getitem__(self, key):
        value = self.get(key, _MISSING)
        if value is _MISSING:
            raise KeyError(key)
        return value


def _forward_cse(fn: IRFunction, ctx: OptContext, mapping: _ChainMap) -> bool:
    """forward_store and cse interleaved into one traversal.

    Decision-for-decision identical to running
    :func:`~repro.compiler.passes.forward_store.forward_store` followed by
    :func:`~repro.compiler.passes.cse.cse`: the slot bookkeeping mirrors the
    former, the available-expression table the latter, and every kept/removed
    instruction, coverage hit, and stats bump matches the sequential pair.
    """
    changed = False
    for block in fn.blocks:
        known: dict[str, object] = {}
        slot_of_temp: dict[int, str] = {}
        available: dict = {}
        kept = []
        for instr in block.instrs:
            instr.replace_operands(mapping)
            if isinstance(instr, LocalAddr):
                slot_of_temp[instr.dst.index] = instr.slot
                # LocalAddr is also a CSE key: fall through.
            elif isinstance(instr, Store):
                slot = (
                    slot_of_temp.get(instr.ptr.index)
                    if isinstance(instr.ptr, Temp)
                    else None
                )
                if slot is None or instr.volatile:
                    known.clear()  # store through an unknown pointer
                else:
                    known[slot] = (instr.value, instr.ty)
                kept.append(instr)
                continue
            elif isinstance(instr, Load):
                forwarded = False
                if not instr.volatile:
                    slot = (
                        slot_of_temp.get(instr.ptr.index)
                        if isinstance(instr.ptr, Temp)
                        else None
                    )
                    if slot is not None and slot in known:
                        value, ty = known[slot]
                        if ty == instr.ty and ty is not IRType.F32:
                            if ty.is_int and isinstance(value, ImmInt):
                                mapping[instr.dst] = ImmInt(_wrap(value.value, ty))
                            elif ty.is_int:
                                # The narrowing round trip survives as a
                                # same-type signed cast, which is itself a
                                # CSE-able pure instruction: swap it in and
                                # fall through to the CSE half below.
                                instr = Cast(
                                    dst=instr.dst,
                                    src=value,
                                    from_ty=ty,
                                    to_ty=ty,
                                    signed=True,
                                )
                            else:  # ptr / f64 round-trip unchanged
                                mapping[instr.dst] = value
                            ctx.cov.hit("opt:fwdstore", ty)
                            ctx.stats.bump("stores_forwarded")
                            changed = True
                            forwarded = isinstance(instr, Load)
                if isinstance(instr, Load):
                    if not forwarded:
                        kept.append(instr)
                    continue
                # else: the forward became a Cast; CSE it like any pure op.
            elif isinstance(instr, (Call, Memcpy)):
                known.clear()
                kept.append(instr)
                continue
            key = _key(instr)
            if key is None:
                kept.append(instr)
                continue
            existing = available.get(key)
            if existing is not None:
                dst = instr.dest()
                assert dst is not None
                mapping[dst] = existing
                ctx.cov.hit("opt:cse", key[0])
                ctx.stats.bump("cse_removed")
                changed = True
                continue
            dst = instr.dest()
            if dst is not None:
                available[key] = dst
            kept.append(instr)
        block.instrs = kept
    return changed


def fused_local_opt(fn: IRFunction, ctx: OptContext) -> None:
    """The per-function -O1 fixpoint round, fused (see module docstring)."""
    ctx.fused_runs += 1
    changed = True
    rounds = 0
    while changed and rounds < 4:
        rounds += 1
        changed = False
        mapping = _ChainMap()
        changed |= const_fold(fn, ctx, mapping=mapping, finalize=False)
        changed |= simplify_cfg(fn, ctx)
        changed |= _forward_cse(fn, ctx, mapping)
        # One combined sweep catches the (rare) use-before-def stragglers
        # the per-instruction rewrites could not see yet.
        replace_uses(fn, mapping)
        changed |= dce(fn, ctx)
    ctx.stats.bump("opt_rounds", rounds)
