"""Flat port of :mod:`.loop_vectorize` (the analysis-only vectorizer).

Pure analysis over the buffer: natural-loop discovery, induction-variable
identification, and trip-count features, reporting the same coverage edges,
stats, and ``trip_count`` checkpoint (the seeded GCC #111820 hang) as the
object pass.  Never mutates the buffer and always returns ``False``.
"""

from __future__ import annotations

from repro.compiler.flatir import (
    IRBuffer, NONE, TAG_IMM, TAG_TEMP,
    OP_BINOP, OP_BR, OP_GEP, OP_GLOBALADDR, OP_LOAD, OP_LOCALADDR, OP_STORE,
)
from repro.compiler.ir import ImmInt
from repro.compiler.passes.flat import _predecessors, _successors
from repro.compiler.passes.loop_vectorize import LoopInfo


def _find_loops(buf: IRBuffer) -> list[LoopInfo]:
    names = buf.names
    order = {blk[0]: i for i, blk in enumerate(buf.blocks)}
    preds = _predecessors(buf)
    loops = []
    for head in buf.blocks:
        latches = [
            p
            for p in preds.get(head[0], [])
            if order.get(p, -1) >= order[head[0]]
        ]
        if not latches:
            continue
        last = max(order[p] for p in latches)
        body = [
            names[blk[0]] for blk in buf.blocks[order[head[0]] : last + 1]
        ]
        loops.append(LoopInfo(names[head[0]], body))
    return loops


def _analyze_induction(buf: IRBuffer, loop: LoopInfo) -> None:
    names = buf.names
    imms = buf.imms
    opcl, dstl, al, bl, auxl = buf.opc, buf.dst, buf.a, buf.b, buf.aux
    slot_of: dict[int, str] = {}
    for _label, idxs in buf.blocks:
        for i in idxs:
            if opcl[i] == OP_LOCALADDR:
                slot_of[dstl[i]] = names[auxl[i]]

    body = set(loop.body)
    body_blocks = [blk for blk in buf.blocks if names[blk[0]] in body]
    loaded: dict[int, str] = {}
    updated: dict[int, tuple[str, int]] = {}  # new temp -> (slot, step)
    for blk in body_blocks:
        for i in blk[1]:
            op = opcl[i]
            if op == OP_LOAD and al[i] & 3 == TAG_TEMP and al[i] != NONE:
                slot = slot_of.get(al[i] >> 2)
                if slot is not None:
                    loaded[dstl[i]] = slot
            elif op == OP_BINOP and names[auxl[i]] in ("+", "-"):
                lhs, rhs = al[i], bl[i]
                if (
                    lhs != NONE
                    and lhs & 3 == TAG_TEMP
                    and lhs >> 2 in loaded
                    and rhs & 3 == TAG_IMM
                    and type(imms[rhs >> 2]) is ImmInt
                ):
                    v = imms[rhs >> 2].value
                    step = v if names[auxl[i]] == "+" else -v
                    updated[dstl[i]] = (loaded[lhs >> 2], step)
            elif op == OP_STORE and al[i] != NONE and al[i] & 3 == TAG_TEMP:
                slot = slot_of.get(al[i] >> 2)
                value = bl[i]
                if (
                    slot is not None
                    and value != NONE
                    and value & 3 == TAG_TEMP
                    and value >> 2 in updated
                    and updated[value >> 2][0] == slot
                ):
                    loop.induction_slot = slot
                    loop.step = updated[value >> 2][1]
            if op == OP_STORE:
                # Count stores whose address chain roots at a global.
                root = al[i]
                if root != NONE and root & 3 == TAG_TEMP:
                    loop.global_stores += _roots_at_global(buf, root >> 2)

    # The exit condition: the head's Br on the updated value means an
    # implicit `!= 0` test (while (--n) lowering); an explicit compare is
    # recorded by its opcode.
    head_blk = None
    for blk in buf.blocks:
        if names[blk[0]] == loop.head:
            head_blk = blk
            break
    if head_blk is not None and head_blk[1] and opcl[head_blk[1][-1]] == OP_BR:
        cond = al[head_blk[1][-1]]
        if cond != NONE and cond & 3 == TAG_TEMP and cond >> 2 in updated:
            loop.exit_compare = "ne0"
        elif cond != NONE and cond & 3 == TAG_TEMP:
            for i in head_blk[1]:
                if opcl[i] == OP_BINOP and dstl[i] == cond >> 2:
                    loop.exit_compare = names[auxl[i]]
                    break

    # Initial value: a constant store to the induction slot before the loop.
    if loop.induction_slot is not None:
        for blk in buf.blocks:
            if names[blk[0]] in body:
                break
            for i in blk[1]:
                if (
                    opcl[i] == OP_STORE
                    and al[i] != NONE
                    and al[i] & 3 == TAG_TEMP
                    and slot_of.get(al[i] >> 2) == loop.induction_slot
                    and bl[i] & 3 == TAG_IMM
                    and type(imms[bl[i] >> 2]) is ImmInt
                ):
                    loop.init = imms[bl[i] >> 2].value


def _roots_at_global(buf: IRBuffer, temp: int) -> int:
    """1 if the pointer temp is (transitively) a GlobalAddr, else 0."""
    opcl, dstl, al = buf.opc, buf.dst, buf.a
    defs: dict[int, int] = {}
    for _label, idxs in buf.blocks:
        for i in idxs:
            d = dstl[i]
            if d is not None:
                defs[d] = i
    seen: set[int] = set()
    current = temp
    while current not in seen:
        seen.add(current)
        d = defs.get(current)
        if d is None:
            return 0
        if opcl[d] == OP_GLOBALADDR:
            return 1
        if opcl[d] != OP_GEP:  # only Gep carries a `base` operand chain
            return 0
        base = al[d]
        if base == NONE or base & 3 != TAG_TEMP:
            return 0
        current = base >> 2
    return 0


def flat_loop_vectorize(fn, ctx) -> bool:
    buf = fn.buffer()
    loops = _find_loops(buf)
    for loop in loops:
        _analyze_induction(buf, loop)
        ctx.cov.hit("opt:vect:loop", (loop.step, loop.exit_compare))
        ctx.stats.bump("loops_analyzed")
        if loop.induction_slot is None:
            ctx.cov.hit("opt:vect:no_induction", len(loop.body) > 3)
            continue
        downward_from_zero = (
            loop.step is not None
            and loop.step < 0
            and loop.init == 0
            and loop.exit_compare == "ne0"
        )
        features = {
            "vect_loops": 1,
            "vect_downward_zero_trip": int(downward_from_zero),
            "vect_global_store_chain": int(loop.global_stores >= 4),
            "vect_step": loop.step or 0,
        }
        ctx.stats.bump("vectorizable", int(loop.global_stores >= 4))
        ctx.check("opt:loop_vectorize:trip_count", features)
        ctx.cov.hit("opt:vect:induction", (loop.step, loop.global_stores >= 4))
    return False
