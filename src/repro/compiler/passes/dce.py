"""Dead code elimination over pure instructions."""

from __future__ import annotations

from repro.compiler.ir import IRFunction, TERMINATORS
from repro.compiler.passes.common import OptContext, use_counts


def dce(fn: IRFunction, ctx: OptContext) -> bool:
    changed = False
    while True:
        uses = use_counts(fn)
        removed = 0
        for block in fn.blocks:
            kept = []
            for instr in block.instrs:
                dst = instr.dest()
                if (
                    dst is not None
                    and not instr.has_side_effects
                    and not isinstance(instr, TERMINATORS)
                    and uses.get(dst.index, 0) == 0
                ):
                    removed += 1
                    continue
                kept.append(instr)
            block.instrs = kept
        if removed == 0:
            return changed
        ctx.cov.hit("opt:dce", removed > 8)
        ctx.stats.bump("dce_removed", removed)
        changed = True
