"""GCC's sprintf → strlen strength reduction (the §5.2 crash-case pass).

``sprintf(dst, "%s", src)`` returns ``strlen(src)``; GCC's strlen pass
rewrites the call's result accordingly after verifying the ranges of the
involved objects.  The paper's exclusive μCFuzz.s crash comes from a mutant
where ``src`` *is* ``dst`` and the buffer is const/volatile-qualified and not
NUL-terminated — ``verify_range`` fails an assertion.  The seeded-bug
registry hooks the checkpoint this pass reports.
"""

from __future__ import annotations

from repro.compiler.ir import Call, GlobalAddr, IRModule, IRType, Temp
from repro.compiler.passes.common import OptContext


def strlen_opt(module: IRModule, ctx: OptContext) -> bool:
    changed = False
    for fn in module.functions.values():
        changed |= strlen_opt_fn(fn, module, ctx)
    return changed


def strlen_opt_fn(fn, module: IRModule, ctx: OptContext) -> bool:
    """The per-function body of :func:`strlen_opt`."""
    changed = False
    # Track which temps hold which global addresses (post-constfold IR
    # is simple enough for this to be block-local-accurate).
    global_of: dict[int, str] = {}
    for instr in fn.instructions():
        if isinstance(instr, GlobalAddr):
            global_of[instr.dst.index] = instr.name
    for block in fn.blocks:
        for i, instr in enumerate(block.instrs):
            if not (isinstance(instr, Call) and instr.callee == "sprintf"):
                continue
            if len(instr.args) < 3 or instr.dst is None:
                continue
            fmt = instr.args[1]
            fmt_name = (
                global_of.get(fmt.index) if isinstance(fmt, Temp) else None
            )
            fmt_global = module.globals.get(fmt_name or "")
            if fmt_global is None or fmt_global.bytes_init != b"%s\x00":
                continue
            dst_name = (
                global_of.get(instr.args[0].index)
                if isinstance(instr.args[0], Temp)
                else None
            )
            src_name = (
                global_of.get(instr.args[2].index)
                if isinstance(instr.args[2], Temp)
                else None
            )
            ctx.cov.hit("opt:strlen", (dst_name == src_name))
            ctx.stats.bump("strlen_opts")
            src_global = module.globals.get(src_name or "")
            features = {
                "strlen_same_object": int(
                    dst_name is not None and dst_name == src_name
                ),
                "strlen_src_qualified": int(
                    src_global is not None
                    and (src_global.const or src_global.volatile)
                ),
            }
            ctx.check("opt:strlen_opt:verify_range", features)
            # Rewrite: the sprintf result becomes strlen(src); keep the
            # sprintf for its side effect, add the strlen for the value.
            strlen_call = Call(
                instr.dst,
                "strlen",
                [instr.args[2]],
                [IRType.PTR],
                IRType.I64,
            )
            side_effect = Call(
                None, "sprintf", instr.args, instr.arg_tys, IRType.VOID
            )
            block.instrs[i] = side_effect
            block.instrs.insert(i + 1, strlen_call)
            changed = True
            break
    return changed
