"""Constant folding and branch folding.

Temps are single-assignment by construction (the IR generator never reuses a
temp), so folding is a simple forward propagation over the whole function.
"""

from __future__ import annotations

from repro.compiler.ir import (
    BinOp, Br, Cast, ImmFloat, ImmInt, IRFunction, IRType, Jmp, Temp, UnOp,
)
from repro.compiler.passes.common import OptContext, replace_uses


def _wrap(value: int, ty: IRType) -> int:
    if not ty.is_int:
        return value
    bits = ty.bits
    value &= (1 << bits) - 1
    if value >= (1 << (bits - 1)):
        value -= 1 << bits
    return value


def _fold_binop(instr: BinOp) -> int | float | None:
    if not isinstance(instr.lhs, (ImmInt, ImmFloat)):
        return None
    if not isinstance(instr.rhs, (ImmInt, ImmFloat)):
        return None
    return fold_binop_values(instr.op, instr.ty, instr.lhs.value, instr.rhs.value)


def fold_binop_values(
    op: str, ty: IRType, a: int | float, b: int | float
) -> int | float | None:
    """Value-level constant folding, shared by the object and flat passes."""
    try:
        if op.rstrip("u") in ("lt", "le", "gt", "ge", "eq", "ne"):
            base = op.rstrip("u")
            if op.endswith("u") and ty.is_int:
                a, b = int(a) & ((1 << ty.bits) - 1), int(b) & ((1 << ty.bits) - 1)
            return int(
                {
                    "lt": a < b, "le": a <= b, "gt": a > b,
                    "ge": a >= b, "eq": a == b, "ne": a != b,
                }[base]
            )
        if ty.is_float:
            return {
                "+": a + b, "-": a - b, "*": a * b,
                "/": a / b if b else None,
            }.get(op)
        a_i, b_i = int(a), int(b)
        if op in ("/", "%") and b_i == 0:
            return None  # division by zero: leave for runtime
        if op.endswith("u"):
            a_i &= (1 << ty.bits) - 1
            b_i &= (1 << ty.bits) - 1
            op = op[:-1]
        result = {
            "+": a_i + b_i, "-": a_i - b_i, "*": a_i * b_i,
            "/": int(a_i / b_i) if b_i else None,
            "%": a_i - int(a_i / b_i) * b_i if b_i else None,
            "<<": a_i << (b_i & (ty.bits - 1)),
            ">>": a_i >> (b_i & (ty.bits - 1)),
            "&": a_i & b_i, "|": a_i | b_i, "^": a_i ^ b_i,
        }.get(op)
        if result is None:
            return None
        return _wrap(result, ty)
    except (OverflowError, ValueError, ZeroDivisionError):
        return None


def _identity_simplify(instr: BinOp):
    """x+0, x*1, x^0, x&x... → operand (algebraic simplification)."""
    lhs, rhs = instr.lhs, instr.rhs
    if isinstance(rhs, ImmInt):
        if instr.op in ("+", "-", "|", "^", "<<", ">>", ">>u") and rhs.value == 0:
            return lhs
        if instr.op == "*" and rhs.value == 1:
            return lhs
        if instr.op == "*" and rhs.value == 0:
            return ImmInt(0)
        if instr.op == "&" and rhs.value == 0:
            return ImmInt(0)
    if isinstance(lhs, ImmInt):
        if instr.op in ("+", "|", "^") and lhs.value == 0:
            return rhs
        if instr.op == "*" and lhs.value == 1:
            return rhs
        if instr.op == "*" and lhs.value == 0:
            return ImmInt(0)
    return None


def const_fold(
    fn: IRFunction,
    ctx: OptContext,
    mapping: dict | None = None,
    finalize: bool = True,
) -> bool:
    """Fold constants into ``mapping``; rewrite uses unless deferred.

    The fused pipeline (:mod:`repro.compiler.passes.fused`) passes a shared
    round mapping and ``finalize=False`` so the single combined use-rewrite
    happens once per round instead of once per pass; standalone callers get
    the historical fold-then-replace behaviour.
    """
    changed = False
    if mapping is None:
        mapping = {}
    for block in fn.blocks:
        kept = []
        for instr in block.instrs:
            instr.replace_operands(mapping)
            if isinstance(instr, BinOp):
                folded = _fold_binop(instr)
                if folded is not None:
                    imm = (
                        ImmFloat(float(folded))
                        if instr.ty.is_float
                        else ImmInt(int(folded))
                    )
                    mapping[instr.dst] = imm
                    ctx.cov.hit("opt:constfold", instr.op)
                    bucket = min(int(abs(folded)).bit_length(), 64)
                    ctx.cov.hit("opt:constfold_val", (instr.op, bucket, folded < 0))
                    ctx.stats.bump("folded")
                    changed = True
                    continue
                simplified = _identity_simplify(instr)
                if simplified is not None:
                    mapping[instr.dst] = simplified
                    ctx.cov.hit("opt:identity", instr.op)
                    ctx.stats.bump("identities")
                    changed = True
                    continue
            elif isinstance(instr, UnOp) and isinstance(
                instr.src, (ImmInt, ImmFloat)
            ):
                v = instr.src.value
                if instr.op == "neg":
                    out = -v
                elif instr.op == "lnot":
                    out = int(not v)
                else:
                    out = ~int(v)
                imm = (
                    ImmFloat(float(out)) if instr.ty.is_float else ImmInt(_wrap(int(out), instr.ty))
                )
                mapping[instr.dst] = imm
                ctx.stats.bump("folded")
                changed = True
                continue
            elif isinstance(instr, Cast) and isinstance(
                instr.src, (ImmInt, ImmFloat)
            ):
                v = instr.src.value
                if instr.to_ty.is_float:
                    imm = ImmFloat(float(v))
                elif instr.to_ty.is_int:
                    # Mirror the interpreter: unsigned casts zero-extend (the
                    # value stays the non-negative representation).
                    iv = _wrap(int(v), instr.to_ty)
                    if not instr.signed:
                        iv &= (1 << instr.to_ty.bits) - 1
                    imm = ImmInt(iv)
                else:
                    imm = ImmInt(int(v))
                mapping[instr.dst] = imm
                ctx.stats.bump("folded")
                changed = True
                continue
            elif isinstance(instr, Br) and isinstance(instr.cond, (ImmInt, ImmFloat)):
                target = instr.if_true if instr.cond.value else instr.if_false
                kept.append(Jmp(target))
                ctx.cov.hit("opt:brfold", bool(instr.cond.value))
                ctx.stats.bump("branches_folded")
                changed = True
                continue
            kept.append(instr)
        block.instrs = kept
    if finalize:
        replace_uses(fn, mapping)
    return changed
