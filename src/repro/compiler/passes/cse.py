"""Local common-subexpression elimination (block-scoped value numbering)."""

from __future__ import annotations

from repro.compiler.ir import (
    BinOp, Cast, Gep, GlobalAddr, IRFunction, LocalAddr, UnOp,
)
from repro.compiler.passes.common import OptContext, replace_uses


#: Operand order does not matter for these; CSE keys sort their operands.
COMMUTATIVE = ("+", "*", "&", "|", "^", "eq", "ne")


def _key(instr):
    if isinstance(instr, BinOp):
        ops = (instr.lhs, instr.rhs)
        if instr.op in COMMUTATIVE:
            ops = tuple(sorted(ops, key=repr))
        return ("bin", instr.op, instr.ty, ops)
    if isinstance(instr, UnOp):
        return ("un", instr.op, instr.ty, instr.src)
    if isinstance(instr, Cast):
        return ("cast", instr.from_ty, instr.to_ty, instr.signed, instr.src)
    if isinstance(instr, Gep):
        return ("gep", instr.base, instr.index, instr.scale, instr.offset)
    if isinstance(instr, LocalAddr):
        return ("local", instr.slot)
    if isinstance(instr, GlobalAddr):
        return ("global", instr.name)
    return None


def cse(fn: IRFunction, ctx: OptContext) -> bool:
    changed = False
    mapping = {}
    for block in fn.blocks:
        available: dict = {}
        kept = []
        for instr in block.instrs:
            instr.replace_operands(mapping)
            key = _key(instr)
            if key is None:
                kept.append(instr)
                continue
            existing = available.get(key)
            if existing is not None:
                dst = instr.dest()
                assert dst is not None
                mapping[dst] = existing
                ctx.cov.hit("opt:cse", key[0])
                ctx.stats.bump("cse_removed")
                changed = True
                continue
            dst = instr.dest()
            if dst is not None:
                available[key] = dst
            kept.append(instr)
        block.instrs = kept
    replace_uses(fn, mapping)
    return changed
