"""AST → IR lowering ("IR generation", the paper's second compiler module).

Lowers the typed AST into :mod:`repro.compiler.ir`.  Every lowering decision
reports a coverage edge, and structural statistics are accumulated for the
seeded-bug trigger predicates (:mod:`repro.compiler.bugs`).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.cast import ast_nodes as ast
from repro.cast import types as ct
from repro.cast.sema import Sema
from repro.compiler import flatir as F
from repro.compiler import layout
from repro.compiler.coverage import CoverageMap
from repro.compiler.ir import (
    BinOp, Block, Br, Call, Cast, Gep, GlobalAddr, GlobalVar, ImmFloat,
    ImmInt, Instr, IRFunction, IRModule, IRType, Jmp, Load, LocalAddr,
    Memcpy, Operand, Ret, Store, Temp, UnOp,
)


class LoweringError(Exception):
    """A construct the simulated middle end rejects ("sorry, unimplemented").

    Treated as an ordinary front-end diagnostic, not a compiler bug.
    """


@dataclass
class IRGenStats:
    """Structural features used by bug-trigger predicates."""

    counters: Counter = field(default_factory=Counter)

    def bump(self, key: str, n: int = 1) -> None:
        self.counters[key] += n

    def get(self, key: str) -> int:
        return self.counters.get(key, 0)


class _FunctionCtx:
    def __init__(self, fn, entry: Block) -> None:
        self.fn = fn
        self.entry = entry
        self.current = entry
        self.temp_counter = 0
        self.block_counter = 0
        self.break_stack: list[str] = []
        self.continue_stack: list[str] = []
        self.locals: dict[int, tuple[str, ct.QualType]] = {}  # id(decl) -> slot
        self.label_blocks: dict[str, str] = {}


class IRGen:
    """Lowers one translation unit to an IR module."""

    def __init__(self, sema: Sema, cov: CoverageMap | None = None) -> None:
        self.sema = sema
        self.cov = cov or CoverageMap()
        self.module = IRModule()
        self.stats = IRGenStats()
        self._ctx: _FunctionCtx | None = None
        self._string_counter = 0
        self._enum_values: dict[str, int] = {}
        self._static_counter = 0

    # ------------------------------------------------------------------ API

    def lower(self, unit: ast.TranslationUnit) -> IRModule:
        self._collect_enums(unit)
        for decl in unit.decls:
            if isinstance(decl, ast.VarDecl):
                self._lower_global(decl)
            elif isinstance(decl, ast.FunctionDecl) and decl.body is not None:
                self._lower_function(decl)
        return self.module

    # ------------------------------------------------------------- helpers

    @property
    def ctx(self) -> _FunctionCtx:
        assert self._ctx is not None
        return self._ctx

    def _temp(self) -> Temp:
        self.ctx.temp_counter += 1
        return Temp(self.ctx.temp_counter)

    def _new_block(self, hint: str) -> Block:
        self.ctx.block_counter += 1
        block = Block(f"{hint}.{self.ctx.block_counter}")
        self.ctx.fn.blocks.append(block)
        return block

    def _emit(self, instr: Instr) -> None:
        # Dead code after a terminator is silently dropped (like real
        # compilers building straight into the CFG).
        if self.ctx.current.terminator is None:
            self.ctx.current.instrs.append(instr)

    def _set_current(self, block: Block) -> None:
        self.ctx.current = block

    def _seal_with_jmp(self, target: Block) -> None:
        if self._unterminated():
            self._emit(Jmp(target.label))

    # Function-carrier hooks.  ``FlatIRGen`` overrides these (plus
    # ``_new_block``/``_emit``/``_set_current``) to grow an ``IRBuffer``
    # instead of an ``IRFunction``; every lowering decision above this seam
    # is shared, so temp numbering, block labels, coverage edges, and stats
    # are identical by construction.

    def _begin_function(self, decl: ast.FunctionDecl, ret_ty: IRType) -> None:
        fn = IRFunction(
            decl.name,
            [],
            ret_ty,
            blocks=[Block("entry")],
            attributes=list(decl.attributes),
        )
        self.module.functions[decl.name] = fn
        self._ctx = _FunctionCtx(fn, fn.blocks[0])

    def _end_function(self) -> None:
        self._ctx = None

    def _add_param(self, name: str, pty: IRType) -> None:
        self.ctx.fn.params.append((name, pty))

    def _unterminated(self) -> bool:
        return self.ctx.current.terminator is None

    def _block_by_label(self, label: str) -> Block:
        return self.ctx.fn.block(label)

    def _empty_user_labels(self) -> int:
        return sum(
            1
            for b in self.ctx.fn.blocks
            if b.label.startswith("ul_")
            and all(isinstance(i, (Jmp, Ret)) for i in b.instrs)
        )

    def _collect_enums(self, unit: ast.TranslationUnit) -> None:
        for node in unit.walk():
            if isinstance(node, ast.EnumDecl):
                value = 0
                for const in node.constants:
                    if const.value is not None:
                        folded = self._fold_const_int(const.value)
                        value = folded if folded is not None else value
                    self._enum_values[const.name] = value
                    value += 1

    def _fold_const_int(self, expr: ast.Expr) -> int | None:
        """Constant folding that also resolves enum constants."""
        if isinstance(expr, ast.DeclRefExpr) and expr.name in self._enum_values:
            return self._enum_values[expr.name]
        if isinstance(expr, (ast.IntegerLiteral, ast.CharacterLiteral)):
            return expr.value
        if isinstance(expr, ast.ParenExpr):
            return self._fold_const_int(expr.inner)
        if isinstance(expr, ast.SizeofExpr):
            try:
                if expr.type_operand is not None:
                    return layout.size_of(expr.type_operand)
                assert expr.operand is not None and expr.operand.type is not None
                return layout.size_of(expr.operand.type)
            except layout.LayoutError:
                return None
        if isinstance(expr, ast.CastExpr) and expr.target_type.is_integer():
            inner = self._fold_const_int(expr.operand)
            if inner is None:
                return None
            return _truncate(inner, layout.ir_type_of(expr.target_type), True)
        if isinstance(expr, ast.UnaryOperator) and expr.op in ("-", "+", "~", "!"):
            v = self._fold_const_int(expr.operand)
            if v is None:
                return None
            return {"-": -v, "+": v, "~": ~v, "!": int(not v)}[expr.op]
        if isinstance(expr, ast.BinaryOperator):
            lhs = self._fold_const_int(expr.lhs)
            rhs = self._fold_const_int(expr.rhs)
            if lhs is None or rhs is None:
                return None
            try:
                return {
                    "+": lhs + rhs, "-": lhs - rhs, "*": lhs * rhs,
                    "/": int(lhs / rhs) if rhs else None,
                    "%": lhs - int(lhs / rhs) * rhs if rhs else None,
                    "<<": lhs << (rhs & 63), ">>": lhs >> (rhs & 63),
                    "&": lhs & rhs, "|": lhs | rhs, "^": lhs ^ rhs,
                    "==": int(lhs == rhs), "!=": int(lhs != rhs),
                    "<": int(lhs < rhs), ">": int(lhs > rhs),
                    "<=": int(lhs <= rhs), ">=": int(lhs >= rhs),
                    "&&": int(bool(lhs and rhs)), "||": int(bool(lhs or rhs)),
                    ",": rhs,
                }.get(expr.op)
            except (ValueError, OverflowError, ZeroDivisionError):
                return None
        return None

    # ------------------------------------------------------------- globals

    def _lower_global(self, decl: ast.VarDecl) -> None:
        try:
            size = max(layout.size_of(decl.type), 1)
        except layout.LayoutError as exc:
            raise LoweringError(str(exc)) from exc
        # Qualifiers of an array object live on its element type.
        core = decl.type
        while core.is_array():
            elem = core.element()
            assert elem is not None
            core = elem
        g = GlobalVar(
            decl.name,
            size,
            const=decl.type.const or core.const,
            volatile=decl.type.volatile or core.volatile,
        )
        self.cov.hit("irgen:global", (decl.type.unqualified().spelling(), size > 8))
        self.stats.bump("globals")
        if decl.type.is_array():
            self.stats.bump("global_arrays")
        if decl.init is not None:
            self._lower_global_init(g, decl.type, decl.init, 0)
        self.module.globals[decl.name] = g

    def _lower_global_init(
        self, g: GlobalVar, qt: ct.QualType, init: ast.Expr, offset: int
    ) -> None:
        if isinstance(init, ast.InitListExpr):
            if qt.is_array():
                elem = qt.element()
                assert elem is not None
                esize = layout.size_of(elem)
                for i, item in enumerate(init.inits):
                    self._lower_global_init(g, elem, item, offset + i * esize)
            elif qt.is_record():
                rec = qt.type
                assert isinstance(rec, ct.RecordType)
                offsets, _sz = layout.record_layout(rec)
                for item, (fname, fqt) in zip(init.inits, rec.fields or ()):
                    self._lower_global_init(g, fqt, item, offset + offsets[fname])
            elif init.inits:
                self._lower_global_init(g, qt, init.inits[0], offset)
            return
        if isinstance(init, ast.StringLiteral):
            data = init.value.encode("latin-1", "replace") + b"\x00"
            for i, byte in enumerate(data[: g.size - offset]):
                g.init.append((offset + i, IRType.I8, byte))
            return
        if isinstance(init, ast.UnaryOperator) and init.op == "&":
            target = init.operand
            while isinstance(target, ast.ParenExpr):
                target = target.inner
            if isinstance(target, ast.DeclRefExpr):
                g.init.append((offset, IRType.PTR, ("addr", target.name, 0)))
                return
            raise LoweringError("unsupported address-constant initializer")
        if qt.is_complex():
            folded = self._fold_const_int(init)
            if folded is not None:
                g.init.append((offset, IRType.F64, float(folded)))
                return
            if isinstance(init, ast.FloatingLiteral):
                g.init.append((offset, IRType.F64, init.value))
                return
            raise LoweringError("unsupported complex initializer")
        try:
            scalar_ty = layout.ir_type_of(qt) if qt.is_scalar() else IRType.I64
        except layout.LayoutError as exc:
            raise LoweringError(str(exc)) from exc
        folded = self._fold_const_int(init)
        if folded is not None:
            if scalar_ty.is_float:
                g.init.append((offset, scalar_ty, float(folded)))
            else:
                g.init.append((offset, scalar_ty, _truncate(folded, scalar_ty, True)))
            return
        if isinstance(init, ast.FloatingLiteral):
            g.init.append((offset, scalar_ty, init.value))
            return
        if (
            isinstance(init, ast.UnaryOperator)
            and init.op in ("-", "+")
            and isinstance(init.operand, ast.FloatingLiteral)
        ):
            v = init.operand.value if init.op == "+" else -init.operand.value
            g.init.append((offset, scalar_ty, v))
            return
        if isinstance(init, ast.CastExpr):
            self._lower_global_init(g, qt, init.operand, offset)
            return
        raise LoweringError("unsupported constant initializer")

    # ----------------------------------------------------------- functions

    def _lower_function(self, decl: ast.FunctionDecl) -> None:
        try:
            ret_ty = (
                IRType.VOID
                if decl.return_type.is_void()
                else layout.ir_type_of(decl.return_type)
                if decl.return_type.is_scalar()
                else IRType.PTR
                if decl.return_type.is_complex() or decl.return_type.is_record()
                else IRType.VOID
            )
        except layout.LayoutError as exc:
            raise LoweringError(str(exc)) from exc
        if decl.return_type.is_record() or decl.return_type.is_complex():
            raise LoweringError(
                f"returning aggregates from {decl.name!r} is unsupported"
            )
        self._begin_function(decl, ret_ty)
        self.cov.hit("irgen:function", (len(decl.params), ret_ty))
        self.stats.bump("functions")
        if decl.return_type.is_void():
            self.stats.bump("void_functions")
        for attr in decl.attributes:
            self.cov.hit("irgen:attr", attr[:40])
            self.stats.bump("attributes")

        # Pre-create user label blocks so forward gotos resolve.
        assert decl.body is not None
        for node in decl.body.walk():
            if isinstance(node, ast.LabelStmt):
                block = self._new_block(f"ul_{node.name}")
                self.ctx.label_blocks[node.name] = block.label
                self.stats.bump("labels")

        params: list[tuple[str, IRType]] = []
        for p in decl.params:
            if not p.type.is_scalar():
                raise LoweringError(
                    f"aggregate parameter {p.name!r} is unsupported"
                )
            pty = layout.ir_type_of(p.type)
            self._add_param(p.name, pty)
            params.append((p.name, pty))
            slot = self._alloc_slot(p.name, p.type)
            self.ctx.locals[id(p)] = (slot, p.type)

        # Spill incoming parameter values into their slots.
        self._set_current(self.ctx.entry)
        for i, p in enumerate(decl.params):
            addr = self._temp()
            self._emit(LocalAddr(addr, params[i][0] + ".slot"))
            self._emit(Store(addr, Temp(-(i + 1)), params[i][1]))

        self._lower_stmt(decl.body)
        # Implicit return at the end of the function.
        if self._unterminated():
            if ret_ty is IRType.VOID:
                self._emit(Ret(None, IRType.VOID))
            else:
                zero = ImmFloat(0.0) if ret_ty.is_float else ImmInt(0)
                self._emit(Ret(zero, ret_ty))
        # The Ret2V shape (Clang #63762): a void function whose user-label
        # blocks carry no computation — the returns that used to live there
        # were removed.  Recorded pre-optimization, where the label structure
        # is still visible.
        if ret_ty is IRType.VOID and self._empty_user_labels() >= 2:
            self.stats.bump("ret2v_shape")
        self._end_function()

    def _alloc_slot(self, hint: str, qt: ct.QualType) -> str:
        base = f"{hint}.slot"
        name = base
        n = 0
        while name in self.ctx.fn.slots:
            n += 1
            name = f"{base}.{n}"
        try:
            self.ctx.fn.slots[name] = max(layout.size_of(qt), 1)
        except layout.LayoutError as exc:
            raise LoweringError(str(exc)) from exc
        return name

    # ----------------------------------------------------------- statements

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        self.cov.hit("irgen:stmt", stmt.kind)
        method = getattr(self, f"_stmt_{stmt.kind}", None)
        if method is None:
            raise LoweringError(f"cannot lower statement {stmt.kind}")
        method(stmt)

    def _stmt_CompoundStmt(self, stmt: ast.CompoundStmt) -> None:
        for s in stmt.stmts:
            self._lower_stmt(s)

    def _stmt_NullStmt(self, stmt: ast.NullStmt) -> None:
        pass

    def _stmt_DeclStmt(self, stmt: ast.DeclStmt) -> None:
        for decl in stmt.decls:
            if isinstance(decl, ast.VarDecl):
                self._lower_local_var(decl)
            # Local records/enums/typedefs need no code.

    def _lower_local_var(self, decl: ast.VarDecl) -> None:
        if decl.storage == "static":
            self._static_counter += 1
            gname = f"{decl.name}.static.{self._static_counter}"
            g = GlobalVar(gname, max(layout.size_of(decl.type), 1))
            if decl.init is not None:
                self._lower_global_init(g, decl.type, decl.init, 0)
            self.module.globals[gname] = g
            self.ctx.locals[id(decl)] = (f"@{gname}", decl.type)
            self.stats.bump("local_statics")
            return
        slot = self._alloc_slot(decl.name, decl.type)
        self.ctx.locals[id(decl)] = (slot, decl.type)
        self.stats.bump("locals")
        if decl.init is None:
            return
        addr = self._temp()
        self._emit(LocalAddr(addr, slot))
        self._lower_init_into(addr, decl.type, decl.init)

    def _lower_init_into(
        self, addr: Operand, qt: ct.QualType, init: ast.Expr
    ) -> None:
        if isinstance(init, ast.InitListExpr):
            self._lower_init_list(addr, qt, init)
            return
        if qt.is_array() and isinstance(init, ast.StringLiteral):
            src = self._intern_string(init.value)
            tmp = self._temp()
            self._emit(GlobalAddr(tmp, src))
            n = min(layout.size_of(qt), len(init.value) + 1)
            self._emit(Memcpy(addr, tmp, n))
            return
        if qt.is_record():
            src_addr = self._lower_lvalue(init)
            self._emit(Memcpy(addr, src_addr, layout.size_of(qt)))
            return
        if qt.is_complex():
            value = self._lower_rvalue(init)
            value = self._coerce(value, self._expr_ty(init), IRType.F64, init)
            self._emit(Store(addr, value, IRType.F64))
            imag = self._temp()
            self._emit(Gep(imag, addr, ImmInt(0), 1, offset=8))
            self._emit(Store(imag, ImmFloat(0.0), IRType.F64))
            return
        value = self._lower_rvalue(init)
        ty = layout.ir_type_of(qt)
        value = self._coerce(value, self._expr_ty(init), ty, init)
        self._emit(Store(addr, value, ty, volatile=qt.volatile))

    def _lower_init_list(
        self, addr: Operand, qt: ct.QualType, init: ast.InitListExpr
    ) -> None:
        if qt.is_array():
            elem = qt.element()
            assert elem is not None
            esize = layout.size_of(elem)
            for i, item in enumerate(init.inits):
                ptr = self._temp()
                self._emit(Gep(ptr, addr, ImmInt(i), esize))
                self._lower_init_into(ptr, elem, item)
            return
        if qt.is_record():
            rec = qt.type
            assert isinstance(rec, ct.RecordType)
            offsets, _sz = layout.record_layout(rec)
            for item, (fname, fqt) in zip(init.inits, rec.fields or ()):
                ptr = self._temp()
                self._emit(Gep(ptr, addr, ImmInt(0), 1, offset=offsets[fname]))
                self._lower_init_into(ptr, fqt, item)
            return
        if init.inits:
            self._lower_init_into(addr, qt, init.inits[0])

    def _stmt_ExprStmt(self, stmt: ast.ExprStmt) -> None:
        self._lower_expr_for_effect(stmt.expr)

    def _stmt_IfStmt(self, stmt: ast.IfStmt) -> None:
        self.stats.bump("ifs")
        cond = self._lower_condition(stmt.cond)
        then_b = self._new_block("if.then")
        else_b = self._new_block("if.else") if stmt.else_branch else None
        end_b = self._new_block("if.end")
        self._emit(Br(cond, then_b.label, (else_b or end_b).label))
        self._set_current(then_b)
        self._lower_stmt(stmt.then_branch)
        self._seal_with_jmp(end_b)
        if else_b is not None:
            self._set_current(else_b)
            assert stmt.else_branch is not None
            self._lower_stmt(stmt.else_branch)
            self._seal_with_jmp(end_b)
        self._set_current(end_b)

    def _stmt_WhileStmt(self, stmt: ast.WhileStmt) -> None:
        self.stats.bump("loops")
        head = self._new_block("while.head")
        body = self._new_block("while.body")
        end = self._new_block("while.end")
        self._seal_with_jmp(head)
        self._set_current(head)
        cond = self._lower_condition(stmt.cond)
        self._emit(Br(cond, body.label, end.label))
        self._set_current(body)
        self.ctx.break_stack.append(end.label)
        self.ctx.continue_stack.append(head.label)
        self._lower_stmt(stmt.body)
        self.ctx.break_stack.pop()
        self.ctx.continue_stack.pop()
        self._seal_with_jmp(head)
        self._set_current(end)

    def _stmt_DoStmt(self, stmt: ast.DoStmt) -> None:
        self.stats.bump("loops")
        body = self._new_block("do.body")
        head = self._new_block("do.cond")
        end = self._new_block("do.end")
        self._seal_with_jmp(body)
        self._set_current(body)
        self.ctx.break_stack.append(end.label)
        self.ctx.continue_stack.append(head.label)
        self._lower_stmt(stmt.body)
        self.ctx.break_stack.pop()
        self.ctx.continue_stack.pop()
        self._seal_with_jmp(head)
        self._set_current(head)
        cond = self._lower_condition(stmt.cond)
        self._emit(Br(cond, body.label, end.label))
        self._set_current(end)

    def _stmt_ForStmt(self, stmt: ast.ForStmt) -> None:
        self.stats.bump("loops")
        if isinstance(stmt.init, ast.DeclStmt):
            self._stmt_DeclStmt(stmt.init)
        elif isinstance(stmt.init, ast.ExprStmt):
            self._lower_expr_for_effect(stmt.init.expr)
        head = self._new_block("for.head")
        body = self._new_block("for.body")
        step = self._new_block("for.step")
        end = self._new_block("for.end")
        self._seal_with_jmp(head)
        self._set_current(head)
        if stmt.cond is not None:
            cond = self._lower_condition(stmt.cond)
            self._emit(Br(cond, body.label, end.label))
        else:
            self._emit(Jmp(body.label))
        self._set_current(body)
        self.ctx.break_stack.append(end.label)
        self.ctx.continue_stack.append(step.label)
        self._lower_stmt(stmt.body)
        self.ctx.break_stack.pop()
        self.ctx.continue_stack.pop()
        self._seal_with_jmp(step)
        self._set_current(step)
        if stmt.inc is not None:
            self._lower_expr_for_effect(stmt.inc)
        self._seal_with_jmp(head)
        self._set_current(end)

    def _stmt_SwitchStmt(self, stmt: ast.SwitchStmt) -> None:
        self.stats.bump("switches")
        value = self._lower_rvalue(stmt.cond)
        vty = self._expr_ty(stmt.cond)
        end = self._new_block("switch.end")
        if not isinstance(stmt.body, ast.CompoundStmt):
            raise LoweringError("switch body must be a compound statement")
        # Split the body into segments at top-level case labels.
        cases: list[tuple[list[int] | None, Block]] = []
        dispatch_anchor = self.ctx.current
        segments: list[tuple[Block, list[ast.Stmt]]] = []
        current_block: Block | None = None
        for s in stmt.body.stmts:
            inner: ast.Stmt | None = s
            labels: list[int] = []
            has_default = False
            while isinstance(inner, (ast.CaseStmt, ast.DefaultStmt)):
                if isinstance(inner, ast.CaseStmt):
                    folded = self._fold_const_int(inner.expr)
                    if folded is None:
                        raise LoweringError("non-constant case label")
                    labels.append(folded)
                else:
                    has_default = True
                inner = inner.stmt
            if labels or has_default:
                block = self._new_block("case")
                if labels:
                    cases.append((labels, block))
                if has_default:
                    cases.append((None, block))
                segments.append((block, [inner] if inner is not None else []))
                current_block = block
                self.cov.hit("irgen:switch_case", (len(labels), has_default))
            elif current_block is None:
                if isinstance(s, (ast.DeclStmt, ast.NullStmt)):
                    continue  # skipped declarations before the first label
                raise LoweringError("statement before first case label")
            else:
                if any(
                    isinstance(n, (ast.CaseStmt, ast.DefaultStmt))
                    for n in s.walk()
                ):
                    raise LoweringError("nested case labels are unsupported")
                segments[-1][1].append(s)
        # Emit the dispatch chain.
        self._set_current(dispatch_anchor)
        default_target = end.label
        for labels, block in cases:
            if labels is None:
                default_target = block.label
                continue
            for lab in labels:
                nxt = self._new_block("switch.test")
                cmp = self._temp()
                self._emit(BinOp(cmp, "eq", value, ImmInt(lab), vty))
                self._emit(Br(cmp, block.label, nxt.label))
                self._set_current(nxt)
        self._emit(Jmp(default_target))
        # Emit the segment bodies with fall-through.
        self.ctx.break_stack.append(end.label)
        for i, (block, stmts) in enumerate(segments):
            self._set_current(block)
            for s in stmts:
                self._lower_stmt(s)
            fallthrough = (
                segments[i + 1][0] if i + 1 < len(segments) else end
            )
            self._seal_with_jmp(fallthrough)
        self.ctx.break_stack.pop()
        self._set_current(end)

    def _stmt_CaseStmt(self, stmt: ast.CaseStmt) -> None:
        raise LoweringError("case label outside switch lowering")

    def _stmt_DefaultStmt(self, stmt: ast.DefaultStmt) -> None:
        raise LoweringError("default label outside switch lowering")

    def _stmt_BreakStmt(self, stmt: ast.BreakStmt) -> None:
        if not self.ctx.break_stack:
            raise LoweringError("break outside loop or switch")
        self._emit(Jmp(self.ctx.break_stack[-1]))
        self._set_current(self._new_block("after.break"))

    def _stmt_ContinueStmt(self, stmt: ast.ContinueStmt) -> None:
        if not self.ctx.continue_stack:
            raise LoweringError("continue outside loop")
        self._emit(Jmp(self.ctx.continue_stack[-1]))
        self._set_current(self._new_block("after.continue"))

    def _stmt_ReturnStmt(self, stmt: ast.ReturnStmt) -> None:
        self.stats.bump("returns")
        if stmt.expr is None:
            self._emit(Ret(None, IRType.VOID))
        else:
            value = self._lower_rvalue(stmt.expr)
            ret_ty = self.ctx.fn.ret_ty
            value = self._coerce(value, self._expr_ty(stmt.expr), ret_ty, stmt.expr)
            self._emit(Ret(value, ret_ty))
        self._set_current(self._new_block("after.ret"))

    def _stmt_GotoStmt(self, stmt: ast.GotoStmt) -> None:
        self.stats.bump("gotos")
        target = self.ctx.label_blocks.get(stmt.label)
        if target is None:
            raise LoweringError(f"goto to unknown label {stmt.label!r}")
        self._emit(Jmp(target))
        self._set_current(self._new_block("after.goto"))

    def _stmt_LabelStmt(self, stmt: ast.LabelStmt) -> None:
        target = self._block_by_label(self.ctx.label_blocks[stmt.name])
        self._seal_with_jmp(target)
        self._set_current(target)
        self._lower_stmt(stmt.stmt)

    # --------------------------------------------------------- expressions

    def _expr_ty(self, expr: ast.Expr) -> IRType:
        if expr.type is None:
            raise LoweringError(f"untyped expression {expr.kind}")
        qt = expr.type.decayed()
        if qt.is_complex():
            return IRType.F64  # complex values are handled via memory
        if qt.is_void():
            return IRType.VOID
        try:
            return layout.ir_type_of(qt)
        except layout.LayoutError as exc:
            raise LoweringError(str(exc)) from exc

    def _coerce(
        self, value: Operand, from_ty: IRType, to_ty: IRType, node: ast.Expr
    ) -> Operand:
        if from_ty == to_ty or to_ty is IRType.VOID or from_ty is IRType.VOID:
            return value
        if isinstance(value, ImmInt) and to_ty.is_int:
            return ImmInt(_truncate(value.value, to_ty, True))
        if isinstance(value, ImmInt) and to_ty.is_float:
            return ImmFloat(float(value.value))
        if isinstance(value, ImmFloat) and to_ty.is_int:
            return ImmInt(_truncate(int(value.value), to_ty, True))
        if isinstance(value, ImmInt) and to_ty is IRType.PTR:
            return value
        dst = self._temp()
        signed = node.type is None or not node.type.is_integer() or node.type.is_signed()
        self._emit(Cast(dst, value, from_ty, to_ty, signed=signed))
        self.cov.hit("irgen:cast", (from_ty, to_ty))
        return dst

    def _lower_condition(self, expr: ast.Expr) -> Operand:
        value = self._lower_rvalue(expr)
        ty = self._expr_ty(expr)
        if ty.is_float:
            dst = self._temp()
            self._emit(BinOp(dst, "ne", value, ImmFloat(0.0), ty))
            return dst
        return value

    def _lower_expr_for_effect(self, expr: ast.Expr) -> None:
        self._lower_rvalue(expr, for_effect=True)

    # -- lvalues ----------------------------------------------------------

    def _lower_lvalue(self, expr: ast.Expr) -> Operand:
        """Lower to an address operand."""
        self.cov.hit("irgen:lvalue", expr.kind)
        if isinstance(expr, ast.ParenExpr):
            return self._lower_lvalue(expr.inner)
        if isinstance(expr, ast.DeclRefExpr):
            return self._decl_addr(expr)
        if isinstance(expr, ast.UnaryOperator) and expr.op == "*":
            return self._lower_rvalue(expr.operand)
        if isinstance(expr, ast.UnaryOperator) and expr.op in ("__real", "__imag"):
            base = self._lower_lvalue(expr.operand)
            if expr.op == "__real":
                return base
            dst = self._temp()
            self._emit(Gep(dst, base, ImmInt(0), 1, offset=8))
            return dst
        if isinstance(expr, ast.ArraySubscriptExpr):
            return self._subscript_addr(expr)
        if isinstance(expr, ast.MemberExpr):
            return self._member_addr(expr)
        if isinstance(expr, ast.StringLiteral):
            name = self._intern_string(expr.value)
            dst = self._temp()
            self._emit(GlobalAddr(dst, name))
            return dst
        if isinstance(expr, ast.CompoundLiteralExpr):
            slot = self._alloc_slot("compound", expr.target_type)
            addr = self._temp()
            self._emit(LocalAddr(addr, slot))
            self._lower_init_list(addr, expr.target_type, expr.init)
            return addr
        if isinstance(expr, ast.CastExpr):
            # GNU lvalue-preserving no-op casts (same canonical type).
            return self._lower_lvalue(expr.operand)
        raise LoweringError(f"expression {expr.kind} is not an lvalue")

    def _decl_addr(self, expr: ast.DeclRefExpr) -> Operand:
        decl = expr.decl
        entry = self.ctx.locals.get(id(decl)) if decl is not None else None
        if entry is not None:
            slot, _qt = entry
            dst = self._temp()
            if slot.startswith("@"):
                self._emit(GlobalAddr(dst, slot[1:]))
            else:
                self._emit(LocalAddr(dst, slot))
            return dst
        if isinstance(decl, ast.VarDecl) and decl.is_global:
            dst = self._temp()
            self._emit(GlobalAddr(dst, decl.name))
            return dst
        if isinstance(decl, ast.FunctionDecl) or (
            expr.type is not None and expr.type.is_function()
        ):
            dst = self._temp()
            self._emit(GlobalAddr(dst, expr.name))
            return dst
        raise LoweringError(f"cannot take the address of {expr.name!r}")

    def _subscript_addr(self, expr: ast.ArraySubscriptExpr) -> Operand:
        base, index = expr.base, expr.index
        bty = base.type.decayed() if base.type else None
        if bty is not None and bty.is_integer():
            base, index = index, base  # the i[arr] form
        base_ptr = self._lower_pointer_value(base)
        idx = self._lower_rvalue(index)
        assert expr.type is not None
        try:
            scale = max(layout.size_of(expr.type), 1)
        except layout.LayoutError as exc:
            raise LoweringError(str(exc)) from exc
        dst = self._temp()
        self._emit(Gep(dst, base_ptr, idx, scale))
        self.stats.bump("subscripts")
        return dst

    def _member_addr(self, expr: ast.MemberExpr) -> Operand:
        if expr.is_arrow:
            base = self._lower_rvalue(expr.base)
            bqt = expr.base.type.decayed().pointee() if expr.base.type else None
        else:
            base = self._lower_lvalue(expr.base)
            bqt = expr.base.type
        if bqt is None or not isinstance(bqt.type, ct.RecordType):
            raise LoweringError("member access on non-record")
        rec = bqt.type
        if rec.fields is None:
            resolved = self.sema._records.get(rec.name)
            if resolved is None:
                raise LoweringError(f"incomplete record {rec.name!r}")
            rec = resolved
        offsets, _sz = layout.record_layout(rec)
        if expr.member not in offsets:
            raise LoweringError(f"no member {expr.member!r}")
        dst = self._temp()
        self._emit(Gep(dst, base, ImmInt(0), 1, offset=offsets[expr.member]))
        self.stats.bump("member_accesses")
        return dst

    def _lower_pointer_value(self, expr: ast.Expr) -> Operand:
        """Pointer value of an expression (decaying arrays to addresses)."""
        qt = expr.type
        if qt is not None and (qt.is_array() or qt.is_function()):
            return self._lower_lvalue(expr)
        return self._lower_rvalue(expr)

    # -- rvalues ----------------------------------------------------------

    def _lower_rvalue(self, expr: ast.Expr, for_effect: bool = False) -> Operand:
        self.cov.hit("irgen:expr", expr.kind)
        method = getattr(self, f"_expr_{expr.kind}", None)
        if method is None:
            raise LoweringError(f"cannot lower expression {expr.kind}")
        return method(expr, for_effect)

    def _expr_IntegerLiteral(self, e: ast.IntegerLiteral, fe: bool) -> Operand:
        return ImmInt(_truncate(e.value, self._expr_ty(e), True))

    def _expr_FloatingLiteral(self, e: ast.FloatingLiteral, fe: bool) -> Operand:
        return ImmFloat(e.value)

    def _expr_CharacterLiteral(self, e: ast.CharacterLiteral, fe: bool) -> Operand:
        return ImmInt(e.value)

    def _expr_StringLiteral(self, e: ast.StringLiteral, fe: bool) -> Operand:
        return self._lower_lvalue(e)

    def _expr_DeclRefExpr(self, e: ast.DeclRefExpr, fe: bool) -> Operand:
        if e.name in self._enum_values and isinstance(
            e.decl, ast.EnumConstantDecl
        ):
            return ImmInt(self._enum_values[e.name])
        qt = e.type
        if qt is not None and (qt.is_array() or qt.is_function()):
            return self._lower_lvalue(e)
        addr = self._decl_addr(e)
        dst = self._temp()
        volatile = qt is not None and qt.volatile
        self._emit(Load(dst, addr, self._expr_ty(e), volatile=volatile))
        return dst

    def _expr_ParenExpr(self, e: ast.ParenExpr, fe: bool) -> Operand:
        return self._lower_rvalue(e.inner, fe)

    def _expr_UnaryOperator(self, e: ast.UnaryOperator, fe: bool) -> Operand:
        op = e.op
        self.cov.hit("irgen:unop", op)
        if op in ("++", "--"):
            return self._lower_incdec(e)
        if op == "&":
            return self._lower_lvalue(e.operand)
        if op == "*":
            addr = self._lower_pointer_value(e.operand)
            if e.type is not None and (e.type.is_array() or e.type.is_record()):
                return addr
            dst = self._temp()
            self._emit(Load(dst, addr, self._expr_ty(e)))
            return dst
        if op in ("__real", "__imag"):
            addr = self._lower_lvalue(e)
            dst = self._temp()
            self._emit(Load(dst, addr, IRType.F64))
            return dst
        value = self._lower_rvalue(e.operand)
        ty = self._expr_ty(e.operand)
        if op == "+":
            return self._coerce(value, ty, self._expr_ty(e), e)
        dst = self._temp()
        if op == "-":
            value = self._coerce(value, ty, self._expr_ty(e), e)
            self._emit(UnOp(dst, "neg", value, self._expr_ty(e)))
        elif op == "~":
            value = self._coerce(value, ty, self._expr_ty(e), e)
            self._emit(UnOp(dst, "bnot", value, self._expr_ty(e)))
            self.stats.bump("bitwise_nots")
        elif op == "!":
            self._emit(UnOp(dst, "lnot", value, ty))
        else:
            raise LoweringError(f"unknown unary operator {op!r}")
        return dst

    def _lower_incdec(self, e: ast.UnaryOperator) -> Operand:
        addr = self._lower_lvalue(e.operand)
        qt = e.operand.type
        assert qt is not None
        ty = self._expr_ty(e.operand)
        volatile = qt.volatile
        old = self._temp()
        self._emit(Load(old, addr, ty, volatile=volatile))
        new = self._temp()
        if qt.is_pointer():
            pointee = qt.pointee()
            step = max(layout.size_of(pointee), 1) if pointee else 1
            self._emit(
                Gep(new, old, ImmInt(1 if e.op == "++" else -1), step)
            )
        else:
            delta = ImmFloat(1.0) if ty.is_float else ImmInt(1)
            self._emit(BinOp(new, "+" if e.op == "++" else "-", old, delta, ty))
        self._emit(Store(addr, new, ty, volatile=volatile))
        return new if e.prefix else old

    def _expr_BinaryOperator(self, e: ast.BinaryOperator, fe: bool) -> Operand:
        op = e.op
        self.cov.hit("irgen:binop", op)
        if op in ast.ASSIGN_OPS:
            return self._lower_assignment(e)
        if op == ",":
            self._lower_expr_for_effect(e.lhs)
            return self._lower_rvalue(e.rhs, fe)
        if op in ("&&", "||"):
            return self._lower_short_circuit(e)
        lqt = e.lhs.type.decayed() if e.lhs.type else None
        rqt = e.rhs.type.decayed() if e.rhs.type else None
        # Pointer arithmetic.
        if lqt is not None and rqt is not None:
            if op in ("+", "-") and lqt.is_pointer() and rqt.is_integer():
                base = self._lower_pointer_value(e.lhs)
                idx = self._lower_rvalue(e.rhs)
                if op == "-":
                    neg = self._temp()
                    self._emit(UnOp(neg, "neg", idx, IRType.I64))
                    idx = neg
                pointee = lqt.pointee()
                scale = max(layout.size_of(pointee), 1) if pointee else 1
                dst = self._temp()
                self._emit(Gep(dst, base, idx, scale))
                self.stats.bump("pointer_arith")
                return dst
            if op == "+" and lqt.is_integer() and rqt.is_pointer():
                return self._expr_BinaryOperator(
                    ast.BinaryOperator(op, e.rhs, e.lhs, e.range, type=e.type), fe
                )
            if op == "-" and lqt.is_pointer() and rqt.is_pointer():
                a = self._lower_pointer_value(e.lhs)
                b = self._lower_pointer_value(e.rhs)
                diff = self._temp()
                self._emit(BinOp(diff, "-", a, b, IRType.I64))
                pointee = lqt.pointee()
                scale = max(layout.size_of(pointee), 1) if pointee else 1
                if scale == 1:
                    return diff
                dst = self._temp()
                self._emit(BinOp(dst, "/", diff, ImmInt(scale), IRType.I64))
                return dst
        return self._lower_arith_or_cmp(e)

    _CMP = {"<": "lt", ">": "gt", "<=": "le", ">=": "ge", "==": "eq", "!=": "ne"}

    def _lower_arith_or_cmp(self, e: ast.BinaryOperator) -> Operand:
        lhs = self._lower_rvalue(e.lhs)
        rhs = self._lower_rvalue(e.rhs)
        lty, rty = self._expr_ty(e.lhs), self._expr_ty(e.rhs)
        if e.op in self._CMP:
            lqt = e.lhs.type.decayed() if e.lhs.type else None
            rqt = e.rhs.type.decayed() if e.rhs.type else None
            if lqt is not None and rqt is not None and (
                lqt.is_pointer() or rqt.is_pointer()
            ):
                common = IRType.PTR
            else:
                common = _common_ty(lty, rty)
            lhs = self._coerce(lhs, lty, common, e.lhs)
            rhs = self._coerce(rhs, rty, common, e.rhs)
            dst = self._temp()
            unsigned = self._is_unsigned_cmp(e)
            opname = self._CMP[e.op] + ("u" if unsigned else "")
            self._emit(BinOp(dst, opname, lhs, rhs, common))
            self.stats.bump("comparisons")
            return dst
        result_ty = self._expr_ty(e)
        self.cov.hit("irgen:binop_shape", (e.op, e.lhs.kind, e.rhs.kind, result_ty))
        lhs = self._coerce(lhs, lty, result_ty, e.lhs)
        rhs = self._coerce(rhs, rty, result_ty, e.rhs)
        dst = self._temp()
        op = e.op
        if op in ("/", "%", ">>") and e.type is not None and e.type.is_integer():
            if not e.type.is_signed():
                op += "u"
        self._emit(BinOp(dst, op, lhs, rhs, result_ty))
        self.stats.bump("arith_ops")
        if op in ("<<", ">>", ">>u"):
            self.stats.bump("shifts")
        if op in ("&", "|", "^"):
            self.stats.bump("bit_ops")
        return dst

    def _is_unsigned_cmp(self, e: ast.BinaryOperator) -> bool:
        for side in (e.lhs, e.rhs):
            if side.type is not None and side.type.is_integer() and not (
                side.type.is_signed()
            ):
                return True
        return False

    def _lower_short_circuit(self, e: ast.BinaryOperator) -> Operand:
        self.stats.bump("short_circuits")
        slot = self._alloc_slot("sc", ct.INT)
        addr = self._temp()
        self._emit(LocalAddr(addr, slot))
        rhs_b = self._new_block("sc.rhs")
        done_b = self._new_block("sc.done")
        lhs = self._lower_condition(e.lhs)
        lhs_bool = self._temp()
        self._emit(BinOp(lhs_bool, "ne", lhs, ImmInt(0), self._expr_ty(e.lhs)))
        self._emit(Store(addr, lhs_bool, IRType.I32))
        if e.op == "&&":
            self._emit(Br(lhs_bool, rhs_b.label, done_b.label))
        else:
            self._emit(Br(lhs_bool, done_b.label, rhs_b.label))
        self._set_current(rhs_b)
        rhs = self._lower_condition(e.rhs)
        rhs_bool = self._temp()
        self._emit(BinOp(rhs_bool, "ne", rhs, ImmInt(0), self._expr_ty(e.rhs)))
        self._emit(Store(addr, rhs_bool, IRType.I32))
        self._seal_with_jmp(done_b)
        self._set_current(done_b)
        dst = self._temp()
        self._emit(Load(dst, addr, IRType.I32))
        return dst

    def _lower_assignment(self, e: ast.BinaryOperator) -> Operand:
        lqt = e.lhs.type
        assert lqt is not None
        if e.op == "=" and lqt.is_record():
            dst_addr = self._lower_lvalue(e.lhs)
            src_addr = self._lower_lvalue(e.rhs)
            self._emit(Memcpy(dst_addr, src_addr, layout.size_of(lqt)))
            return dst_addr
        if e.op == "=" and lqt.is_complex():
            dst_addr = self._lower_lvalue(e.lhs)
            if e.rhs.type is not None and e.rhs.type.is_complex():
                src_addr = self._lower_lvalue(e.rhs)
                self._emit(Memcpy(dst_addr, src_addr, 16))
            else:
                value = self._lower_rvalue(e.rhs)
                value = self._coerce(value, self._expr_ty(e.rhs), IRType.F64, e.rhs)
                self._emit(Store(dst_addr, value, IRType.F64))
                imag = self._temp()
                self._emit(Gep(imag, dst_addr, ImmInt(0), 1, offset=8))
                self._emit(Store(imag, ImmFloat(0.0), IRType.F64))
            return dst_addr
        addr = self._lower_lvalue(e.lhs)
        ty = self._expr_ty(e.lhs)
        volatile = lqt.volatile
        self.stats.bump("assignments")
        if e.op == "=":
            value = self._lower_rvalue(e.rhs)
            value = self._coerce(value, self._expr_ty(e.rhs), ty, e.rhs)
            self._emit(Store(addr, value, ty, volatile=volatile))
            return value
        # Compound assignment: load, op, store.
        base_op = e.op[:-1]
        old = self._temp()
        self._emit(Load(old, addr, ty, volatile=volatile))
        rhs = self._lower_rvalue(e.rhs)
        rty = self._expr_ty(e.rhs)
        if lqt.decayed().is_pointer() and base_op in ("+", "-"):
            if base_op == "-":
                neg = self._temp()
                self._emit(UnOp(neg, "neg", rhs, IRType.I64))
                rhs = neg
            pointee = lqt.decayed().pointee()
            scale = max(layout.size_of(pointee), 1) if pointee else 1
            new = self._temp()
            self._emit(Gep(new, old, rhs, scale))
        else:
            rhs = self._coerce(rhs, rty, ty, e.rhs)
            op = base_op
            if op in ("/", "%", ">>") and lqt.is_integer() and not lqt.is_signed():
                op += "u"
            new = self._temp()
            self._emit(BinOp(new, op, old, rhs, ty))
        self._emit(Store(addr, new, ty, volatile=volatile))
        return new

    def _expr_ConditionalOperator(self, e: ast.ConditionalOperator, fe: bool) -> Operand:
        self.stats.bump("ternaries")
        is_void = e.type is not None and e.type.is_void()
        result_ty = IRType.I64 if is_void else self._expr_ty(e)
        slot = self._alloc_slot("cond", ct.LONG)
        addr = self._temp()
        self._emit(LocalAddr(addr, slot))
        then_b = self._new_block("cond.true")
        else_b = self._new_block("cond.false")
        done_b = self._new_block("cond.done")
        cond = self._lower_condition(e.cond)
        self._emit(Br(cond, then_b.label, else_b.label))
        self._set_current(then_b)
        tv = self._lower_rvalue(e.true_expr)
        if not is_void:
            tv = self._coerce(tv, self._expr_ty(e.true_expr), result_ty, e.true_expr)
            self._emit(Store(addr, tv, result_ty))
        self._seal_with_jmp(done_b)
        self._set_current(else_b)
        fv = self._lower_rvalue(e.false_expr)
        if not is_void:
            fv = self._coerce(fv, self._expr_ty(e.false_expr), result_ty, e.false_expr)
            self._emit(Store(addr, fv, result_ty))
        self._seal_with_jmp(done_b)
        self._set_current(done_b)
        if is_void:
            return ImmInt(0)
        dst = self._temp()
        self._emit(Load(dst, addr, result_ty))
        return dst

    def _expr_CallExpr(self, e: ast.CallExpr, fe: bool) -> Operand:
        name = e.callee_name()
        if name is None:
            raise LoweringError("indirect calls are unsupported")
        args: list[Operand] = []
        arg_tys: list[IRType] = []
        for arg in e.args:
            qt = arg.type
            if qt is not None and (qt.is_record() or qt.is_complex()):
                raise LoweringError("aggregate call arguments are unsupported")
            value = self._lower_pointer_value(arg)
            args.append(value)
            arg_tys.append(self._expr_ty(arg))
        ret_qt = e.type
        is_void = ret_qt is None or ret_qt.is_void()
        ret_ty = IRType.VOID if is_void else self._expr_ty(e)
        dst = None if is_void else self._temp()
        self._emit(Call(dst, name, args, arg_tys, ret_ty))
        self.cov.hit("irgen:call", (name if name in _KNOWN_LIB else "_user", len(args)))
        self.cov.hit(
            "irgen:call_shape",
            (name if name in _KNOWN_LIB else "_user",
             tuple(a.kind for a in e.args[:4])),
        )
        self.stats.bump("calls")
        return dst if dst is not None else ImmInt(0)

    def _expr_ArraySubscriptExpr(self, e: ast.ArraySubscriptExpr, fe: bool) -> Operand:
        addr = self._subscript_addr(e)
        if e.type is not None and (e.type.is_array() or e.type.is_record()):
            return addr
        dst = self._temp()
        volatile = e.type is not None and e.type.volatile
        self._emit(Load(dst, addr, self._expr_ty(e), volatile=volatile))
        return dst

    def _expr_MemberExpr(self, e: ast.MemberExpr, fe: bool) -> Operand:
        addr = self._member_addr(e)
        if e.type is not None and (e.type.is_array() or e.type.is_record()):
            return addr
        dst = self._temp()
        self._emit(Load(dst, addr, self._expr_ty(e)))
        return dst

    def _expr_CastExpr(self, e: ast.CastExpr, fe: bool) -> Operand:
        target = e.target_type
        if target.is_void():
            self._lower_expr_for_effect(e.operand)
            return ImmInt(0)
        if target.is_record() or target.is_complex():
            return self._lower_lvalue(e.operand)
        value = self._lower_pointer_value(e.operand)
        src_ty = (
            IRType.PTR
            if e.operand.type is not None
            and (e.operand.type.decayed().is_pointer())
            else self._expr_ty(e.operand)
        )
        dst_ty = layout.ir_type_of(target)
        self.stats.bump("casts")
        if e.operand.type is not None and e.operand.type.is_complex():
            # Casting a complex value reads its real part.
            addr = self._lower_lvalue(e.operand)
            real = self._temp()
            self._emit(Load(real, addr, IRType.F64))
            return self._coerce(real, IRType.F64, dst_ty, e)
        return self._coerce(value, src_ty, dst_ty, e)

    def _expr_SizeofExpr(self, e: ast.SizeofExpr, fe: bool) -> Operand:
        folded = self._fold_const_int(e)
        return ImmInt(folded if folded is not None else 8)

    def _expr_CompoundLiteralExpr(self, e: ast.CompoundLiteralExpr, fe: bool) -> Operand:
        addr = self._lower_lvalue(e)
        if e.type is not None and (e.type.is_record() or e.type.is_array()):
            return addr
        dst = self._temp()
        self._emit(Load(dst, addr, self._expr_ty(e)))
        return dst

    def _expr_InitListExpr(self, e: ast.InitListExpr, fe: bool) -> Operand:
        raise LoweringError("initializer list outside declaration")

    # ------------------------------------------------------------- strings

    def _intern_string(self, value: str) -> str:
        data = value.encode("latin-1", "replace") + b"\x00"
        for name, g in self.module.globals.items():
            if g.bytes_init == data:
                return name
        self._string_counter += 1
        name = f".str.{self._string_counter}"
        g = GlobalVar(name, len(data), const=True)
        g.bytes_init = data
        for i, byte in enumerate(data):
            g.init.append((i, IRType.I8, byte))
        self.module.globals[name] = g
        return name


_KNOWN_LIB = frozenset(
    {
        "printf", "sprintf", "snprintf", "puts", "putchar", "abort", "exit",
        "malloc", "calloc", "free", "memset", "memcpy", "strlen", "strcpy",
        "strcmp", "abs", "labs", "rand", "srand", "assert", "scanf",
    }
)


def _truncate(value: int, ty: IRType, signed: bool) -> int:
    if not ty.is_int:
        return value
    bits = ty.bits
    value &= (1 << bits) - 1
    if signed and value >= (1 << (bits - 1)):
        value -= 1 << bits
    return value


def _common_ty(a: IRType, b: IRType) -> IRType:
    if IRType.F64 in (a, b):
        return IRType.F64
    if IRType.F32 in (a, b):
        return IRType.F64
    if IRType.PTR in (a, b):
        return IRType.PTR
    order = [IRType.I8, IRType.I16, IRType.I32, IRType.I64]
    return order[max(order.index(a), order.index(b))]


class FlatIRGen(IRGen):
    """Buffer-direct lowering: rows go straight into an :class:`IRBuffer`.

    Every lowering decision — expression shapes, temp numbering, block
    labels, coverage edges, stats — runs through the shared ``IRGen``
    lowerers; only the function carrier and the emission seam differ.
    Blocks exist as lightweight label handles (plain ``Block`` objects with
    empty instruction lists) so the shared lowerers can keep passing
    ``block.label`` to branches, while the authoritative block structure
    lives in ``IRBuffer.blocks``.  The per-instruction ``Instr`` object the
    lowerers build is encoded into a row and discarded; no object-form
    function is ever registered in the module.
    """

    def __init__(self, sema: Sema, cov: CoverageMap | None = None,
                 counters=None) -> None:
        super().__init__(sema, cov)
        self.counters = counters
        self._buf = None
        self._rows: dict[str, list] = {}
        self._handles: dict[str, Block] = {}
        self._cur_row: list | None = None

    def _begin_function(self, decl: ast.FunctionDecl, ret_ty: IRType) -> None:
        buf = F.IRBuffer(decl.name, (), F.TYPE_TAG[ret_ty])
        buf.attributes = list(decl.attributes)
        self.module.functions[decl.name] = F.FlatFunction(buf, self.counters)
        entry = Block("entry")
        row = [buf.name_id("entry"), []]
        buf.blocks.append(row)
        self._buf = buf
        self._rows = {"entry": row}
        self._handles = {"entry": entry}
        self._cur_row = row
        self._ctx = _FunctionCtx(self.module.functions[decl.name], entry)

    def _end_function(self) -> None:
        self._ctx = None
        self._buf = None
        self._rows = {}
        self._handles = {}
        self._cur_row = None

    def _add_param(self, name: str, pty: IRType) -> None:
        self._buf.params.append((name, F.TYPE_TAG[pty]))

    def _new_block(self, hint: str) -> Block:
        self.ctx.block_counter += 1
        label = f"{hint}.{self.ctx.block_counter}"
        block = Block(label)
        row = [self._buf.name_id(label), []]
        self._buf.blocks.append(row)
        self._rows[label] = row
        self._handles[label] = block
        return block

    def _emit(self, instr: Instr) -> None:
        idxs = self._cur_row[1]
        if idxs and self._buf.opc[idxs[-1]] in F.TERMINATOR_OPS:
            return  # dead code after a terminator, as in the object path
        idxs.append(F.encode_instr(self._buf, instr))

    def _set_current(self, block: Block) -> None:
        self.ctx.current = block
        self._cur_row = self._rows[block.label]

    def _unterminated(self) -> bool:
        idxs = self._cur_row[1]
        return not idxs or self._buf.opc[idxs[-1]] not in F.TERMINATOR_OPS

    def _block_by_label(self, label: str) -> Block:
        return self._handles[label]

    def _empty_user_labels(self) -> int:
        buf = self._buf
        names = buf.names
        opc = buf.opc
        return sum(
            1
            for label_id, idxs in buf.blocks
            if names[label_id].startswith("ul_")
            and all(opc[i] in (F.OP_JMP, F.OP_RET) for i in idxs)
        )
