"""The seeded-bug registry for the simulated compilers.

Each :class:`BugSpec` is a latent defect: a module, a consequence (assertion
failure / segfault / hang — Table 6's 85%/7%/8% mix), a pair of synthetic
stack frames (the dedup key of §5.1), and a trigger predicate over the
feature vector of :mod:`repro.compiler.features` plus the per-stage pipeline
statistics.

Five bugs are modelled directly on the paper's case studies; the remainder is
a synthetic population generated deterministically so that the campaign
reproduces the module/tooling distribution of Tables 4 and 6:

* *malformed-input* front-end bugs fire on lexically broken inputs — the
  surface a byte-level fuzzer like AFL++ reaches;
* *valid-edge* front-end bugs fire on odd-but-valid constructs that GrayC's
  five mutators can also produce;
* middle/back-end bugs require conjunctions of mutation fingerprints that
  effectively only stacked semantic-aware mutations produce.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Callable

from repro.compiler.crash import CompilerCrash, CompilerHang, StackFrame

MODULES = ("front-end", "ir-gen", "optimization", "back-end")

Predicate = Callable[[dict], bool]


@dataclass(frozen=True)
class BugSpec:
    bug_id: str
    compiler: str  # "gcc-sim" | "clang-sim"
    module: str
    kind: str  # "assert" | "segfault" | "hang"
    description: str
    predicate: Predicate
    frames: tuple[str, str]
    #: Checkpoint at which the predicate is evaluated ("" = end of module).
    point: str = ""
    min_opt: int = 0
    require_flags: tuple[str, ...] = ()

    def fire(self, features: dict) -> None:
        """Raise the crash/hang if the trigger condition holds."""
        if features.get("opt_level", 0) < self.min_opt:
            return
        flags = features.get("flags", ())
        if any(fl not in flags for fl in self.require_flags):
            return
        if not self.predicate(features):
            return
        if self.kind == "hang":
            raise CompilerHang(self.bug_id, self.module, self.description)
        # CRC32, not hash(): synthetic PCs must be identical across
        # processes (pool workers) and runs, or crash signatures would not
        # deduplicate consistently.
        frames = [
            StackFrame(self.frames[0], 0x10 * (zlib.crc32(self.bug_id.encode()) % 4096)),
            StackFrame(self.frames[1], 0x8 * (zlib.crc32(self.bug_id[::-1].encode()) % 4096)),
            StackFrame(
                "internal_error" if self.compiler == "gcc-sim" else "llvm::report_error",
                0,
            ),
        ]
        raise CompilerCrash(
            self.bug_id,
            self.module,
            self.description,
            frames,
            kind="segfault" if self.kind == "segfault" else "assert",
        )


def _ge(key: str, threshold: int) -> Predicate:
    return lambda f: f.get(key, 0) >= threshold


def _all(*preds: Predicate) -> Predicate:
    return lambda f: all(p(f) for p in preds)


# ---------------------------------------------------------------------------
# Case-study bugs (§2, §5.2, §5.3)
# ---------------------------------------------------------------------------

CASE_STUDY_BUGS = [
    BugSpec(
        "clang-63762",
        "clang-sim",
        "back-end",
        "assert",
        "Ret2V mutant: a void function whose label blocks became empty when "
        "its returns were removed trips branch-through-cleanup emission "
        "(Clang #63762).",
        _ge("ret2v_shape", 1),
        ("clang::CodeGen::EmitBranchThroughCleanup", "llvm::BasicBlock::eraseFromParent"),
    ),
    BugSpec(
        "gcc-111820",
        "gcc-sim",
        "optimization",
        "hang",
        "Loop vectorizer freezes computing the iteration count of a loop "
        "counting down from zero (GCC #111820; -O3 -fno-tree-vrp).",
        _all(
            _ge("vect_downward_zero_trip", 1),
            _ge("vect_global_store_chain", 1),
        ),
        ("vect_analyze_loop", "number_of_iterations_exit"),
        point="opt:loop_vectorize:trip_count",
        min_opt=3,
        require_flags=("-fno-tree-vrp",),
    ),
    BugSpec(
        "gcc-111819",
        "gcc-sim",
        "ir-gen",
        "assert",
        "__imag/& applied through a casted pointer-arithmetic expression is "
        "mishandled by fold_offsetof (GCC #111819).",
        _all(_ge("addr_of_imag", 1), _ge("char_ptr_cast", 1), _ge("deref_of_cast", 1)),
        ("fold_offsetof", "gimplify_expr"),
    ),
    BugSpec(
        "clang-69213",
        "clang-sim",
        "front-end",
        "segfault",
        "StructToInt mutant: a scalar compound literal with a nested brace "
        "initializer reaches a non-existent AST node (Clang #69213).",
        _ge("scalar_compound_literal_nested", 1),
        ("clang::Sema::BuildCompoundLiteralExpr", "clang::InitListChecker::CheckScalar"),
    ),
    BugSpec(
        "gcc-strlen-verify-range",
        "gcc-sim",
        "optimization",
        "assert",
        "sprintf(buf, \"%s\", buf) on a const/volatile global builds an "
        "invalid memory range in the strlen pass (verify_range ICE, §5.2).",
        _all(_ge("strlen_same_object", 1), _ge("strlen_src_qualified", 1)),
        ("verify_range", "strlen_pass::handle_builtin_sprintf"),
        point="opt:strlen_opt:verify_range",
        min_opt=2,
    ),
]

#: Two loop-misoptimization bugs reachable by deeply nested counting loops —
#: the territory YARPGen's loop-focused generation policies explore (§5.2
#: attributes YARPGen's two unique crashes to exactly this design focus).
LOOP_OPT_BUGS = [
    BugSpec(
        "gcc-loopopt-nest",
        "gcc-sim",
        "optimization",
        "assert",
        "Deeply nested counting loops over global arrays break the loop "
        "interchange profitability model.",
        _all(_ge("loop_nest_depth", 4), _ge("global_arrays", 2)),
        ("tree_loop_interchange", "loop_cand::analyze_iloop_reduction_var"),
        min_opt=2,
    ),
    BugSpec(
        "clang-loopopt-nest",
        "clang-sim",
        "optimization",
        "assert",
        "Loop distribution on a 4-deep loop nest with many subscripted "
        "accesses asserts in the dependence analysis.",
        _all(_ge("loop_nest_depth", 4), _ge("subscripts", 10)),
        ("llvm::LoopDistributePass::processLoop", "llvm::DependenceInfo::depends"),
        min_opt=2,
    ),
]


# ---------------------------------------------------------------------------
# Synthetic population
# ---------------------------------------------------------------------------

#: (feature, low, high) pools per module; a synthetic bug draws a conjunction
#: of 1-3 of these with thresholds inside the given ranges.  Malformed-input
#: bugs additionally require a front-end diagnostic.
_MALFORMED_POOL = [
    ("max_paren_depth", 7, 13),
    ("max_brace_depth", 9, 15),
    ("max_ident_len", 40, 100),
    ("token_count", 1500, 6000),
    ("max_number_len", 24, 48),
    ("unterminated_literal", 1, 1),
    ("stray_char", 1, 1),
    ("unbalanced_parens", 1, 1),
    ("unbalanced_braces", 1, 1),
    ("hash_tokens", 3, 8),
    ("max_string_len", 120, 400),
]

_FE_VALID_POOL = [
    ("label_noop", 2, 4),
    ("gotos", 3, 6),
    ("const_volatile", 1, 2),
    ("cast_chain", 2, 4),
    ("attr_count", 2, 4),
    ("expr_depth", 16, 26),
    ("stmt_depth", 10, 16),
    ("literal_comparison", 2, 5),
    ("empty_else", 2, 4),
    ("adjacent_twins", 3, 6),
    ("kind_ConditionalOperator", 4, 8),
    ("switch_max_cases", 6, 10),
    ("wide_shift", 1, 2),
    ("max_params", 6, 9),
    ("self_assign", 1, 2),
    ("static_fns", 3, 5),
]

_IRGEN_POOL = [
    ("pointer_arith", 5, 10),
    ("casts", 5, 10),
    ("member_accesses", 5, 9),
    ("short_circuits", 5, 9),
    ("ternaries", 3, 6),
    ("local_statics", 2, 3),
    ("labels", 3, 5),
    ("swapped_subscript", 1, 2),
    ("deref_of_cast", 2, 4),
    ("comma_zero", 2, 4),
    ("imag_real", 2, 3),
    ("complex_vars", 1, 2),
    ("bitwise_nots", 3, 6),
    ("subscripts", 8, 14),
    ("switches", 2, 4),
    ("double_neg", 2, 4),
    ("not_not", 2, 4),
]

_OPT_POOL = [
    ("folded", 18, 40),
    ("identities", 5, 12),
    ("dce_removed", 25, 60),
    ("cse_removed", 8, 18),
    ("stores_forwarded", 8, 18),
    ("inlined", 2, 4),
    ("branches_folded", 4, 8),
    ("unreachable_removed", 6, 14),
    ("blocks_merged", 10, 20),
    ("if_zero", 2, 4),
    ("while_zero", 1, 2),
    ("xor_zero", 2, 4),
    ("add_zero", 3, 6),
    ("mul_one", 2, 4),
    ("strlen_opts", 1, 1),
    ("loops_analyzed", 3, 5),
    ("jumps_threaded", 6, 12),
]

_BACKEND_POOL = [
    ("be_spills", 3, 8),
    ("be_pressure", 8, 9),
    ("be_blocks", 22, 40),
    ("be_label_blocks", 3, 5),
    ("be_instrs", 350, 700),
    ("be_calls", 8, 14),
    ("be_empty_label_after_call", 1, 3),
]

#: Mutation fingerprints: constructs that natural seed programs essentially
#: never contain, but semantic-aware mutators routinely introduce.  Every
#: valid-input synthetic bug requires at least one of these, which is what
#: makes the deep bug population reachable by μCFuzz but not by generators
#: that only emit natural code (Csmith's saturation, §5.2).
_FINGERPRINT_POOL = [
    ("double_neg", 1, 3),
    ("not_not", 1, 3),
    ("bnot_bnot", 1, 2),
    ("xor_zero", 1, 3),
    ("comma_zero", 1, 2),
    ("if_zero", 1, 3),
    ("if_const_true", 1, 3),
    ("while_zero", 1, 1),
    ("do_while_zero", 1, 2),
    ("label_noop", 3, 5),
    ("swapped_subscript", 1, 2),
    ("deref_of_cast", 1, 2),
    ("cast_chain", 1, 2),
    ("const_volatile", 1, 1),
    ("self_assign", 1, 2),
    ("empty_else", 1, 2),
    ("adjacent_twins", 2, 4),
    ("wide_shift", 1, 2),
    ("add_zero", 2, 4),
    ("mul_one", 1, 3),
    ("literal_comparison", 1, 3),
    ("char_ptr_cast", 1, 2),
]

_FRAME_NAMES = {
    ("gcc-sim", "front-end"): ["c_parser_expression", "c_parser_statement",
                               "lookahead_token", "c_lex_with_flags",
                               "pp_token", "declspecs_add_type"],
    ("gcc-sim", "ir-gen"): ["gimplify_expr", "gimplify_modify_expr",
                            "fold_binary_loc", "build2_loc", "fold_convert_loc",
                            "create_tmp_var"],
    ("gcc-sim", "optimization"): ["tree_ssa_dominator_optimize", "vn_reference_lookup",
                                  "propagate_value", "simplify_rhs_and_lookup_avail_expr",
                                  "vect_analyze_loop", "ipa_inline"],
    ("gcc-sim", "back-end"): ["expand_expr_real_1", "emit_move_insn",
                              "lra_assign", "final_scan_insn"],
    ("clang-sim", "front-end"): ["clang::Parser::ParseStatement",
                                 "clang::Sema::ActOnBinOp",
                                 "clang::Lexer::LexTokenInternal",
                                 "clang::Parser::ParseCastExpression",
                                 "clang::Sema::CheckAssignmentConstraints",
                                 "clang::Parser::ParseDeclGroup"],
    ("clang-sim", "ir-gen"): ["clang::CodeGen::CodeGenFunction::EmitScalarExpr",
                              "clang::CodeGen::CodeGenFunction::EmitLValue",
                              "clang::CodeGen::CGExprAgg::VisitInitListExpr",
                              "clang::CodeGen::EmitCompoundStmt",
                              "llvm::IRBuilder::CreateGEP"],
    ("clang-sim", "optimization"): ["llvm::InstCombiner::visitICmpInst",
                                    "llvm::SimplifyCFGOpt::run",
                                    "llvm::GVNPass::processInstruction",
                                    "llvm::LoopVectorizationPlanner::plan"],
    ("clang-sim", "back-end"): ["llvm::SelectionDAGISel::SelectCodeCommon",
                                "llvm::RegAllocFast::allocateInstruction",
                                "llvm::AsmPrinter::emitFunctionBody",
                                "clang::CodeGen::EmitBranchThroughCleanup"],
}

#: How many synthetic bugs to seed per compiler/module/trigger-surface.
_SYNTH_PLAN = {
    # compiler: (fe_malformed, fe_valid, irgen, opt, backend)
    "clang-sim": (12, 18, 26, 10, 13),
    "gcc-sim": (10, 8, 18, 13, 3),
}


def _synth_bugs(seed: int = 20240427) -> list[BugSpec]:
    rng = random.Random(seed)
    bugs: list[BugSpec] = []
    for compiler, (n_mal, n_valid, n_ir, n_opt, n_be) in sorted(
        _SYNTH_PLAN.items()
    ):
        plans = [
            ("front-end", _MALFORMED_POOL, n_mal, True),
            ("front-end", _FE_VALID_POOL, n_valid, False),
            ("ir-gen", _IRGEN_POOL, n_ir, False),
            ("optimization", _OPT_POOL, n_opt, False),
            ("back-end", _BACKEND_POOL, n_be, False),
        ]
        for module, pool, count, needs_diag in plans:
            for i in range(count):
                conds = []
                names = []
                if needs_diag:
                    picks = rng.sample(pool, rng.choice([1, 2, 2, 3]))
                    conds.append(_ge("parse_failed", 1))
                    surface = "malformed"
                else:
                    # One mutation fingerprint + 0-2 structural conditions.
                    fp_count = rng.choice([1, 1, 1, 2])
                    picks = rng.sample(_FINGERPRINT_POOL, fp_count)
                    picks += rng.sample(pool, rng.choice([0, 1, 1, 2]))
                    conds.append(lambda f: not f.get("parse_failed", 0))
                    surface = "valid"
                for key, lo, hi in picks:
                    threshold = rng.randint(lo, hi)
                    conds.append(_ge(key, threshold))
                    names.append(f"{key}>={threshold}")
                kind = rng.choices(
                    ["assert", "segfault", "hang"], weights=[85, 7, 8]
                )[0]
                frames = rng.sample(_FRAME_NAMES[(compiler, module)], 2)
                min_opt = 0
                if module == "optimization":
                    min_opt = rng.choice([1, 1, 2, 2, 3])
                bug_id = f"{compiler.split('-')[0]}-{module[:2]}-{surface[:3]}-{i:03d}"
                bugs.append(
                    BugSpec(
                        bug_id,
                        compiler,
                        module,
                        kind,
                        f"synthetic {surface} {module} bug: "
                        + " && ".join(names),
                        _all(*conds),
                        (frames[0], frames[1]),
                        min_opt=min_opt,
                    )
                )
    return bugs


@dataclass
class BugRegistry:
    """All seeded bugs of one compiler personality."""

    compiler: str
    bugs: list[BugSpec] = field(default_factory=list)

    @classmethod
    def for_compiler(cls, compiler: str, seed: int = 20240427) -> "BugRegistry":
        bugs = [b for b in CASE_STUDY_BUGS if b.compiler == compiler]
        bugs += [b for b in LOOP_OPT_BUGS if b.compiler == compiler]
        bugs += [b for b in _synth_bugs(seed) if b.compiler == compiler]
        return cls(compiler, bugs)

    def by_module(self) -> dict[str, int]:
        out = {m: 0 for m in MODULES}
        for b in self.bugs:
            out[b.module] += 1
        return out

    def check(self, point: str, features: dict) -> None:
        """Fire any bug bound to this checkpoint whose trigger holds."""
        for bug in self.bugs:
            if bug.point == point or (not bug.point and point.startswith(bug.module)):
                bug.fire(features)
