"""The simulated target compilers ("gcc-sim-14" / "clang-sim-18").

The paper fuzzes instrumented builds of GCC and Clang; this package provides
the substitute: a complete multi-stage compiler pipeline for our C subset —
front end (:mod:`repro.cast`), IR generation, an optimizer with several
semantic passes, and a register-allocating back end — instrumented with
branch-coverage feedback and seeded with latent bugs whose distribution
mirrors the paper's Tables 4/6 (see :mod:`repro.compiler.bugs`).
"""

from repro.compiler.driver import (
    Compiler,
    CompileResult,
    GCC_SIM,
    CLANG_SIM,
    default_compilers,
)
from repro.compiler.coverage import CoverageMap
from repro.compiler.crash import CompilerCrash, CompilerHang, StackFrame
from repro.compiler.session import CompileSession

__all__ = [
    "Compiler",
    "CompileResult",
    "CompileSession",
    "GCC_SIM",
    "CLANG_SIM",
    "default_compilers",
    "CoverageMap",
    "CompilerCrash",
    "CompilerHang",
    "StackFrame",
]
