"""Target data layout (LP64) shared by IR generation and the interpreter."""

from __future__ import annotations

from repro.cast import types as ct
from repro.compiler.ir import IRType


class LayoutError(Exception):
    """A type that cannot be laid out (shouldn't happen after sema)."""


_BUILTIN_IR = {
    ct.BuiltinKind.BOOL: IRType.I8,
    ct.BuiltinKind.CHAR: IRType.I8,
    ct.BuiltinKind.SCHAR: IRType.I8,
    ct.BuiltinKind.UCHAR: IRType.I8,
    ct.BuiltinKind.SHORT: IRType.I16,
    ct.BuiltinKind.USHORT: IRType.I16,
    ct.BuiltinKind.INT: IRType.I32,
    ct.BuiltinKind.UINT: IRType.I32,
    ct.BuiltinKind.LONG: IRType.I64,
    ct.BuiltinKind.ULONG: IRType.I64,
    ct.BuiltinKind.LONGLONG: IRType.I64,
    ct.BuiltinKind.ULONGLONG: IRType.I64,
    ct.BuiltinKind.FLOAT: IRType.F32,
    ct.BuiltinKind.DOUBLE: IRType.F64,
    ct.BuiltinKind.LONGDOUBLE: IRType.F64,
}


def ir_type_of(qt: ct.QualType) -> IRType:
    """The IR value type of a C scalar type."""
    ty = qt.type
    if isinstance(ty, ct.BuiltinType):
        if ty.kind in _BUILTIN_IR:
            return _BUILTIN_IR[ty.kind]
        if ty.kind is ct.BuiltinKind.VOID:
            return IRType.VOID
        raise LayoutError(f"no scalar IR type for {qt.spelling()}")
    if isinstance(ty, (ct.PointerType, ct.ArrayType, ct.FunctionType)):
        return IRType.PTR
    if isinstance(ty, ct.EnumType):
        return IRType.I32
    raise LayoutError(f"no scalar IR type for {qt.spelling()}")


def is_signed(qt: ct.QualType) -> bool:
    return qt.is_signed() or isinstance(qt.type, ct.EnumType)


def align_of(qt: ct.QualType) -> int:
    ty = qt.type
    if isinstance(ty, ct.BuiltinType):
        if ty.kind in (ct.BuiltinKind.COMPLEX_DOUBLE, ct.BuiltinKind.COMPLEX_FLOAT):
            return 8
        return max(1, size_of(qt))
    if isinstance(ty, (ct.PointerType, ct.FunctionType)):
        return 8
    if isinstance(ty, ct.ArrayType):
        return align_of(ty.element)
    if isinstance(ty, ct.RecordType):
        return max((align_of(f) for _n, f in ty.fields or ()), default=1)
    if isinstance(ty, ct.EnumType):
        return 4
    raise LayoutError(f"no alignment for {qt.spelling()}")


def size_of(qt: ct.QualType) -> int:
    """sizeof on the simulated LP64 target."""
    ty = qt.type
    if isinstance(ty, ct.BuiltinType):
        if ty.kind is ct.BuiltinKind.VOID:
            return 1  # GNU extension: sizeof(void) == 1
        if ty.kind is ct.BuiltinKind.COMPLEX_DOUBLE:
            return 16
        if ty.kind is ct.BuiltinKind.COMPLEX_FLOAT:
            return 8
        if ty.kind in _BUILTIN_IR:
            return _BUILTIN_IR[ty.kind].size
        raise LayoutError(f"no size for {qt.spelling()}")
    if isinstance(ty, (ct.PointerType, ct.FunctionType)):
        return 8
    if isinstance(ty, ct.ArrayType):
        return (ty.size or 0) * size_of(ty.element)
    if isinstance(ty, ct.RecordType):
        return record_layout(ty)[1]
    if isinstance(ty, ct.EnumType):
        return 4
    raise LayoutError(f"no size for {qt.spelling()}")


def record_layout(rec: ct.RecordType) -> tuple[dict[str, int], int]:
    """Field offsets and the padded total size of a struct/union."""
    if rec.fields is None:
        raise LayoutError(f"incomplete record {rec.spelling()}")
    offsets: dict[str, int] = {}
    if rec.tag_kind == "union":
        size = 0
        for name, fqt in rec.fields:
            offsets[name] = 0
            size = max(size, size_of(fqt))
        align = max((align_of(f) for _n, f in rec.fields), default=1)
        return offsets, _round_up(max(size, 1), align)
    offset = 0
    for name, fqt in rec.fields:
        a = align_of(fqt)
        offset = _round_up(offset, a)
        offsets[name] = offset
        offset += size_of(fqt)
    align = max((align_of(f) for _n, f in rec.fields), default=1)
    return offsets, _round_up(max(offset, 1), align)


def _round_up(value: int, align: int) -> int:
    return (value + align - 1) // align * align
