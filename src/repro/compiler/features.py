"""Structural feature extraction for seeded-bug triggers.

Bug triggers are conjunctions over a feature vector describing the program
being compiled.  The vector combines lexical statistics (available even for
malformed inputs — the AFL++-reachable surface), AST "mutation fingerprints"
(patterns that natural seed programs essentially never contain but
semantic-aware mutators routinely produce), and the per-module statistics the
pipeline stages accumulate.
"""

from __future__ import annotations

from collections import Counter

from repro.cast import ast_nodes as ast
from repro.cast.lexer import Lexer, LexError, TokenKind
from repro.cast.sema import fold_int
from repro.cast.source import SourceFile


def lexical_features(text: str, tokens: "list | None" = None) -> dict[str, int]:
    """Features computable from raw text/tokens (even for garbage input)."""
    f: Counter = Counter()
    f["text_len"] = len(text)
    depth = brace = max_depth = max_brace = 0
    try:
        if tokens is None:
            tokens = Lexer(SourceFile(text)).tokens()
    except LexError as exc:
        f["lex_error"] = 1
        if "unterminated" in exc.message:
            f["unterminated_literal"] = 1
        if "stray" in exc.message:
            f["stray_char"] = 1
        # Fall back to character statistics.
        f["max_paren_depth"] = _char_depth(text, "(", ")")
        f["max_brace_depth"] = _char_depth(text, "{", "}")
        f["token_count"] = len(text.split())
        return dict(f)
    f["token_count"] = len(tokens)
    for tok in tokens:
        if tok.kind is TokenKind.IDENT:
            f["max_ident_len"] = max(f["max_ident_len"], len(tok.text))
        elif tok.kind is TokenKind.INT_LITERAL:
            f["max_number_len"] = max(f["max_number_len"], len(tok.text))
        elif tok.kind is TokenKind.STRING_LITERAL:
            f["string_count"] += 1
            f["max_string_len"] = max(f["max_string_len"], len(tok.text))
        elif tok.kind is TokenKind.PUNCT:
            if tok.text == "(":
                depth += 1
                max_depth = max(max_depth, depth)
            elif tok.text == ")":
                depth -= 1
            elif tok.text == "{":
                brace += 1
                max_brace = max(max_brace, brace)
            elif tok.text == "}":
                brace -= 1
            elif tok.text == "#":
                f["hash_tokens"] += 1
            elif tok.text == ";":
                f["semicolons"] += 1
    f["max_paren_depth"] = max_depth
    f["max_brace_depth"] = max_brace
    f["unbalanced_parens"] = int(depth != 0)
    f["unbalanced_braces"] = int(brace != 0)
    return dict(f)


def _char_depth(text: str, open_ch: str, close_ch: str) -> int:
    depth = best = 0
    for ch in text:
        if ch == open_ch:
            depth += 1
            best = max(best, depth)
        elif ch == close_ch:
            depth = max(depth - 1, 0)
    return best


def _unparen(expr: ast.Expr) -> ast.Expr:
    while isinstance(expr, ast.ParenExpr):
        expr = expr.inner
    return expr


#: Feature keys combined by ``max()`` when merging per-declaration vectors;
#: every other key is additive.  Keeping this in sync with
#: :func:`decl_ast_features` is what makes the per-decl decomposition exact.
AST_MAX_FEATURES = frozenset(
    {"switch_max_cases", "max_params", "expr_depth", "stmt_depth",
     "loop_nest_depth"}
)

#: Depth keys are reported even for empty units (the monolithic walk always
#: set them).
_DEPTH_FEATURES = ("expr_depth", "stmt_depth", "loop_nest_depth")


def ast_features(
    unit: ast.TranslationUnit, source_text: str | None = None
) -> dict[str, int]:
    """Mutation-fingerprint features over a successfully parsed unit.

    Computed per top-level declaration and merged, so the incremental front
    end can reuse the unchanged declarations' vectors verbatim.
    """
    return merge_ast_features(
        decl_ast_features(decl, source_text) for decl in unit.decls
    )


def merge_ast_features(per_decl) -> dict[str, int]:
    """Combine per-declaration vectors into the whole-unit vector."""
    f: dict[str, int] = {"kind_TranslationUnit": 1}
    for d in per_decl:
        for k, v in d.items():
            if k in AST_MAX_FEATURES:
                f[k] = max(f.get(k, 0), v)
            else:
                f[k] = f.get(k, 0) + v
    for k in _DEPTH_FEATURES:
        f.setdefault(k, 0)
    return f


def decl_ast_features(
    decl: ast.Node, source_text: str | None = None, nodes=None
) -> dict[str, int]:
    """One top-level declaration's contribution to :func:`ast_features`.

    Pure over the decl subtree (node kinds, operators, range *lengths* and
    intra-decl text slices), so it is invariant under the uniform offset
    shift the incremental front end applies to grafted declarations.
    ``nodes`` optionally supplies the decl's pre-order walk, letting the
    caller share one traversal across passes.
    """
    f: Counter = Counter()
    compounds: list[ast.CompoundStmt] = []
    for node in nodes if nodes is not None else decl.walk():
        f[f"kind_{node.kind}"] += 1
        if isinstance(node, ast.CompoundStmt):
            compounds.append(node)
        if isinstance(node, ast.UnaryOperator):
            inner = _unparen(node.operand)
            if node.op == "-" and isinstance(inner, ast.UnaryOperator) and inner.op == "-":
                f["double_neg"] += 1
            if node.op == "!" and isinstance(inner, ast.UnaryOperator) and inner.op == "!":
                f["not_not"] += 1
            if node.op == "~" and isinstance(inner, ast.UnaryOperator) and inner.op == "~":
                f["bnot_bnot"] += 1
            if node.op in ("__imag", "__real"):
                f["imag_real"] += 1
                if isinstance(inner, (ast.UnaryOperator, ast.CastExpr)):
                    f["imag_of_indirect"] += 1
            if node.op == "&" and isinstance(inner, ast.UnaryOperator) and (
                inner.op in ("__imag", "__real")
            ):
                f["addr_of_imag"] += 1
            if node.op == "*" and isinstance(inner, ast.CastExpr):
                f["deref_of_cast"] += 1
        elif isinstance(node, ast.BinaryOperator):
            lhs, rhs = _unparen(node.lhs), _unparen(node.rhs)
            if node.op == "^" and _is_zero(rhs):
                f["xor_zero"] += 1
            if node.op in ("+", "-") and _is_zero(rhs):
                f["add_zero"] += 1
            if node.op == "*" and _is_literal(rhs, 1):
                f["mul_one"] += 1
            if node.op == "," and _is_zero(lhs):
                f["comma_zero"] += 1
            if node.op in ast.COMPARISON_OPS and (
                isinstance(lhs, ast.IntegerLiteral)
                and isinstance(rhs, ast.IntegerLiteral)
            ):
                f["literal_comparison"] += 1
            if node.op == "=" and _same_ref(lhs, rhs):
                f["self_assign"] += 1
            if node.op in ("<<", ">>") and isinstance(rhs, ast.IntegerLiteral) and (
                rhs.value >= 32
            ):
                f["wide_shift"] += 1
            if node.op in ("/", "%") and _is_zero(rhs):
                f["div_by_zero_literal"] += 1
        elif isinstance(node, ast.IfStmt):
            folded = fold_int(node.cond)
            if folded == 0:
                f["if_zero"] += 1
            elif folded is not None:
                f["if_const_true"] += 1
            if isinstance(node.else_branch, ast.NullStmt) or (
                isinstance(node.else_branch, ast.CompoundStmt)
                and all(
                    isinstance(s, ast.NullStmt) for s in node.else_branch.stmts
                )
            ):
                f["empty_else"] += 1
        elif isinstance(node, ast.WhileStmt):
            if fold_int(node.cond) == 0:
                f["while_zero"] += 1
        elif isinstance(node, ast.DoStmt):
            if fold_int(node.cond) == 0:
                f["do_while_zero"] += 1
        elif isinstance(node, ast.LabelStmt):
            f["labels"] += 1
            if isinstance(node.stmt, ast.NullStmt):
                f["label_noop"] += 1
        elif isinstance(node, ast.GotoStmt):
            f["gotos"] += 1
        elif isinstance(node, ast.CastExpr):
            inner = _unparen(node.operand)
            if isinstance(inner, ast.CastExpr):
                f["cast_chain"] += 1
            if node.type_text.replace(" ", "") == "char*":
                f["char_ptr_cast"] += 1
            if node.target_type.is_pointer():
                f["ptr_casts"] += 1
        elif isinstance(node, ast.CompoundLiteralExpr):
            if node.target_type.is_scalar() and any(
                isinstance(i, ast.InitListExpr) for i in node.init.inits
            ):
                f["scalar_compound_literal_nested"] += 1
        elif isinstance(node, ast.ArraySubscriptExpr):
            base = _unparen(node.base)
            if base.type is not None and base.type.is_integer():
                f["swapped_subscript"] += 1
        elif isinstance(node, ast.VarDecl):
            if node.type.const and node.type.volatile:
                f["const_volatile"] += 1
            if node.type.is_complex():
                f["complex_vars"] += 1
        elif isinstance(node, ast.SwitchStmt):
            f["switch_max_cases"] = max(f["switch_max_cases"], len(node.cases()))
        elif isinstance(node, ast.FunctionDecl):
            f["max_params"] = max(f["max_params"], len(node.params))
            f["attr_count"] += len(node.attributes)
            if node.storage == "static":
                f["static_fns"] += 1
        elif isinstance(node, ast.CallExpr):
            names = []
            for arg in node.args:
                a = _unparen(arg)
                if isinstance(a, ast.DeclRefExpr):
                    names.append(a.name)
            if len(names) != len(set(names)):
                f["dup_call_args"] += 1
    f["expr_depth"], f["stmt_depth"], f["loop_nest_depth"] = _max_depths(decl)
    # Adjacent duplicate statements (DuplicateStatement fingerprints): the
    # statements must be *textually identical*, not merely similar.
    for node in compounds:
        for a, b in zip(node.stmts, node.stmts[1:]):
            if isinstance(a, ast.NullStmt) or a.kind != b.kind:
                continue
            if a.range.length != b.range.length:
                continue
            if source_text is not None:
                a_txt = source_text[a.range.begin.offset : a.range.end.offset]
                b_txt = source_text[b.range.begin.offset : b.range.end.offset]
                if a_txt != b_txt:
                    continue
            f["adjacent_twins"] += 1
    return dict(f)


def _is_zero(expr: ast.Expr) -> bool:
    return isinstance(expr, ast.IntegerLiteral) and expr.value == 0


def _is_literal(expr: ast.Expr, value: int) -> bool:
    return isinstance(expr, ast.IntegerLiteral) and expr.value == value


def _same_ref(a: ast.Expr, b: ast.Expr) -> bool:
    return (
        isinstance(a, ast.DeclRefExpr)
        and isinstance(b, ast.DeclRefExpr)
        and a.name == b.name
    )


def _max_depth(root: ast.Node, cls) -> int:
    best = 0

    def walk(node: ast.Node, depth: int) -> None:
        nonlocal best
        d = depth + 1 if isinstance(node, cls) else depth
        best = max(best, d)
        for child in node.children():
            walk(child, d)

    walk(root, 0)
    return best


_LOOP_STMTS = (ast.ForStmt, ast.WhileStmt, ast.DoStmt)


def _max_depths(root: ast.Node) -> tuple[int, int, int]:
    """(expr, stmt, loop-nest) nesting depths, in one traversal.

    Equivalent to three ``_max_depth`` calls over ``Expr``, ``Stmt``, and
    the loop statements, fused for the feature-extraction hot path.
    """
    best_e = best_s = best_l = 0
    stack: list[tuple[ast.Node, int, int, int]] = [(root, 0, 0, 0)]
    while stack:
        node, de, ds, dl = stack.pop()
        if isinstance(node, ast.Expr):
            de += 1
            if de > best_e:
                best_e = de
        if isinstance(node, ast.Stmt):
            ds += 1
            if ds > best_s:
                best_s = ds
        if isinstance(node, _LOOP_STMTS):
            dl += 1
            if dl > best_l:
                best_l = dl
        for child in node.children():
            stack.append((child, de, ds, dl))
    return best_e, best_s, best_l
