"""Mutation testing with MetaMut mutators (the paper's §6 outlook).

The paper notes that "MetaMut may also be potentially useful in mutation
testing by generating mutators that explore boundary program behaviors."
This module implements that extension: perturb a program under test with the
generated mutators and measure how many mutants a test oracle *kills*
(detects), using the IR interpreter as the execution engine.

Semantic-aware compiler-fuzzing mutators behave differently from classic
mutation-testing operators, exactly as §6 predicts: identity-style mutators
produce equivalent mutants (never killable), while semantics-changing ones
are killed even by weak suites.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.cast.parser import ParseError, parse
from repro.cast.sema import Sema
from repro.compiler.coverage import CoverageMap
from repro.compiler.irgen import IRGen, LoweringError
from repro.compiler.interp import execute
from repro.muast.mutator import MutatorCrash, MutatorHang, apply_mutator
from repro.muast.registry import MutatorInfo, MutatorRegistry, global_registry


@dataclass
class MutantResult:
    mutator: str
    status: str  # "killed" | "survived" | "equivalent" | "invalid"


@dataclass
class MutationScore:
    """Outcome of a mutation-testing run."""

    results: list[MutantResult] = field(default_factory=list)

    def _count(self, status: str) -> int:
        return sum(1 for r in self.results if r.status == status)

    @property
    def killed(self) -> int:
        return self._count("killed")

    @property
    def survived(self) -> int:
        return self._count("survived")

    @property
    def equivalent(self) -> int:
        return self._count("equivalent")

    @property
    def invalid(self) -> int:
        return self._count("invalid")

    @property
    def score(self) -> float:
        """Killed / killable (the standard mutation-score definition)."""
        killable = self.killed + self.survived
        return self.killed / killable if killable else 0.0


def _behaviour(text: str, entry: str, fuel: int):
    try:
        unit = parse(text)
    except (ParseError, RecursionError):
        return None
    sema = Sema()
    if [d for d in sema.analyze(unit) if d.severity == "error"]:
        return None
    try:
        module = IRGen(sema, CoverageMap()).lower(unit)
    except (LoweringError, RecursionError):
        return None
    return execute(module, entry=entry, fuel=fuel).observable


def mutation_score(
    program: str,
    *,
    mutants_per_mutator: int = 1,
    registry: MutatorRegistry | None = None,
    mutators: list[MutatorInfo] | None = None,
    rng: random.Random | None = None,
    entry: str = "main",
    fuel: int = 250_000,
) -> MutationScore:
    """Run a mutation-testing campaign over ``program``.

    The oracle is the program's own observable behaviour (exit code +
    output): a mutant is *killed* when its behaviour differs, *survived*
    when it behaves identically but the text changed, *equivalent* when the
    mutation was a semantic no-op is indistinguishable — here folded into
    "survived" unless the mutant text equals the original — and *invalid*
    when the mutant does not compile (compile-error mutants are discarded,
    as in classic mutation testing).
    """
    registry = registry or global_registry
    rng = rng or random.Random(0)
    pool = mutators if mutators is not None else list(registry)
    baseline = _behaviour(program, entry, fuel)
    if baseline is None:
        raise ValueError("the program under test must compile and run")
    score = MutationScore()
    for info in pool:
        for trial in range(mutants_per_mutator):
            mutator = info.create(random.Random(rng.randrange(1 << 62)))
            try:
                outcome = apply_mutator(mutator, program)
            except (MutatorCrash, MutatorHang, RecursionError):
                continue
            if not outcome.changed or outcome.mutant_text == program:
                continue
            mutated = _behaviour(outcome.mutant_text, entry, fuel)
            if mutated is None:
                score.results.append(MutantResult(info.name, "invalid"))
            elif mutated != baseline:
                score.results.append(MutantResult(info.name, "killed"))
            else:
                score.results.append(MutantResult(info.name, "survived"))
    return score
