"""Result analysis: crash Venn diagrams, summary statistics, bug reports."""

from repro.analysis.venn import venn_counts, exclusive_counts
from repro.analysis.stats import summarize
from repro.analysis.reports import BugReport, BugTracker
from repro.analysis.mutation_testing import MutationScore, mutation_score

__all__ = [
    "venn_counts",
    "exclusive_counts",
    "summarize",
    "BugReport",
    "BugTracker",
    "MutationScore",
    "mutation_score",
]
