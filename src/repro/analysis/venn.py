"""Crash-set Venn computations (Figure 8)."""

from __future__ import annotations

from itertools import combinations
from typing import Hashable, Mapping, Sequence


def venn_counts(
    sets: Mapping[str, set[Hashable]]
) -> dict[frozenset[str], int]:
    """Exact region sizes of the Venn diagram over the given crash sets.

    Returns region → count, where a region is the frozenset of set names
    whose intersection (minus all others) the count describes.  Empty
    regions are omitted.
    """
    names = list(sets)
    out: dict[frozenset[str], int] = {}
    for r in range(1, len(names) + 1):
        for combo in combinations(names, r):
            inside = set.intersection(*(sets[n] for n in combo))
            outside = set().union(
                *(sets[n] for n in names if n not in combo)
            ) if len(combo) < len(names) else set()
            region = inside - outside
            if region:
                out[frozenset(combo)] = len(region)
    return out


def exclusive_counts(sets: Mapping[str, set[Hashable]]) -> dict[str, int]:
    """How many elements each set holds that no other set does."""
    out = {}
    for name, members in sets.items():
        others = set().union(*(s for n, s in sets.items() if n != name))
        out[name] = len(members - others)
    return out


def union_size(sets: Mapping[str, set[Hashable]]) -> int:
    return len(set().union(*sets.values())) if sets else 0


def exclusive_to_group(
    sets: Mapping[str, set[Hashable]], group: Sequence[str]
) -> int:
    """Elements found only by the given group of sets (e.g. both μCFuzz
    variants vs. all baselines — the paper's 72.8% exclusivity figure)."""
    inside = set().union(*(sets[n] for n in group if n in sets))
    outside = set().union(
        *(s for n, s in sets.items() if n not in group)
    )
    return len(inside - outside)
