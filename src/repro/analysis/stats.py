"""Small summary-statistics helpers shared by the benches."""

from __future__ import annotations

from typing import Sequence


def summarize(values: Sequence[float]) -> dict[str, float]:
    """min/max/median/mean, matching the paper's table format."""
    if not values:
        return {"min": 0.0, "max": 0.0, "median": 0.0, "mean": 0.0}
    ordered = sorted(values)
    n = len(ordered)
    median = (
        ordered[n // 2]
        if n % 2
        else (ordered[n // 2 - 1] + ordered[n // 2]) / 2
    )
    return {
        "min": float(ordered[0]),
        "max": float(ordered[-1]),
        "median": float(median),
        "mean": sum(ordered) / n,
    }


def format_table(
    rows: list[tuple], headers: tuple[str, ...], widths: tuple[int, ...] | None = None
) -> str:
    """Fixed-width text table used by the bench harnesses' output."""
    if widths is None:
        widths = tuple(
            max(len(str(headers[i])), *(len(str(r[i])) for r in rows)) + 2
            if rows
            else len(str(headers[i])) + 2
            for i in range(len(headers))
        )
    def fmt(row: tuple) -> str:
        return "".join(str(cell).ljust(w) for cell, w in zip(row, widths))

    lines = [fmt(headers), "-" * sum(widths)]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)
