"""Bug-report modelling for the field experiment (Table 6).

Every unique bug the macro fuzzer uncovers is "reported upstream"; its
triage outcome (confirmed / fixed / duplicate) is modelled deterministically
from the bug identity with proportions matching Table 6: 129/131 confirmed,
35 fixed, 13 duplicates, and GCC assigning priority >= P2 to ~40% of its
confirmed reports.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

MODULE_LABELS = {
    "front-end": "Front-End",
    "ir-gen": "IR Generation",
    "optimization": "Optimization",
    "back-end": "Back-End",
}

CONSEQUENCE_LABELS = {
    "assert": "Assertion Failure",
    "segfault": "Segmentation Fault",
    "hang": "Hang",
}


def _ratio(bug_id: str, salt: str) -> float:
    digest = hashlib.sha256(f"{salt}:{bug_id}".encode()).digest()
    return int.from_bytes(digest[:4], "big") / 0xFFFFFFFF


@dataclass(frozen=True)
class BugReport:
    bug_id: str
    compiler: str  # "gcc-sim-14" etc.
    module: str
    consequence: str  # assert | segfault | hang
    description: str
    trigger_program: str = ""

    @property
    def confirmed(self) -> bool:
        return _ratio(self.bug_id, "confirm") < 0.985

    @property
    def fixed(self) -> bool:
        return self.confirmed and _ratio(self.bug_id, "fix") < 0.27

    @property
    def duplicate(self) -> bool:
        return _ratio(self.bug_id, "dup") < 0.10

    @property
    def priority(self) -> str:
        """GNU-workflow priority for GCC reports (§5.3: 39.6% >= P2)."""
        r = _ratio(self.bug_id, "prio")
        if r < 0.06:
            return "P1"
        if r < 0.40:
            return "P2"
        return "P3"


@dataclass
class BugTracker:
    """The campaign's reported-bug ledger and its Table 6 rendering."""

    reports: list[BugReport] = field(default_factory=list)
    _seen: set[str] = field(default_factory=set)

    def report(self, bug: BugReport) -> bool:
        key = f"{bug.compiler}:{bug.bug_id}"
        if key in self._seen:
            return False
        self._seen.add(key)
        self.reports.append(bug)
        return True

    def _by_compiler(self, family: str) -> list[BugReport]:
        return [r for r in self.reports if r.compiler.startswith(family)]

    def table6(self) -> dict[str, dict[str, int]]:
        """Rows of Table 6 for the clang/gcc column split."""
        out: dict[str, dict[str, int]] = {}
        for column, family in (("Clang", "clang-sim"), ("GCC", "gcc-sim")):
            rows = self._by_compiler(family)
            cell: dict[str, int] = {
                "Reported": len(rows),
                "Confirmed": sum(1 for r in rows if r.confirmed),
                "Fixed": sum(1 for r in rows if r.fixed),
                "Duplicate": sum(1 for r in rows if r.duplicate),
            }
            for module, label in MODULE_LABELS.items():
                cell[label] = sum(1 for r in rows if r.module == module)
            for consequence, label in CONSEQUENCE_LABELS.items():
                cell[label] = sum(
                    1 for r in rows if r.consequence == consequence
                )
            out[column] = cell
        total = {}
        for key in next(iter(out.values()), {}):
            total[key] = sum(col[key] for col in out.values())
        out["Total"] = total
        return out

    def render(self) -> str:
        table = self.table6()
        keys = list(next(iter(table.values())).keys())
        lines = [f"{'':24s} {'Clang':>8s} {'GCC':>8s} {'Total':>8s}"]
        for key in keys:
            lines.append(
                f"{key:24s} {table['Clang'][key]:8d} {table['GCC'][key]:8d} "
                f"{table['Total'][key]:8d}"
            )
        return "\n".join(lines)
