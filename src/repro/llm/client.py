"""The LLM API client: latency, token accounting, and throttling errors.

Wraps :class:`SimulatedLLM` behind a ChatCompletion-shaped interface.  Every
request consumes virtual wait/prepare time and tokens (Tables 2-3); a small
per-request failure probability reproduces the API throttling/timeouts that
killed 24 of the paper's 100 unsupervised invocations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.llm import costs
from repro.llm.model import SimulatedLLM


class APIError(Exception):
    """An API-side failure (throttle / timeout)."""


@dataclass
class ChatUsage:
    tokens: int
    wait_seconds: float


class LLMClient:
    """A thin, failure-prone transport in front of the model.

    ``failure_rate`` is per *request*; an invocation issues ~6 requests on
    average, so the default reproduces the ~24% per-invocation failure rate
    of §4.
    """

    def __init__(
        self,
        model: SimulatedLLM | None = None,
        failure_rate: float = 0.040,
    ) -> None:
        self.model = model or SimulatedLLM()
        self.failure_rate = failure_rate
        self.requests = 0
        self.failures = 0

    def _request(self, rng: random.Random, tokens: int) -> ChatUsage:
        self.requests += 1
        if rng.random() < self.failure_rate:
            self.failures += 1
            raise APIError("rate limited (simulated throttle/timeout)")
        return ChatUsage(tokens, costs.sample_wait_seconds(rng))

    # -- the three request kinds MetaMut issues ---------------------------

    def invent(self, rng: random.Random, avoid: set[str], origin: str):
        usage = self._request(rng, costs.sample_invention_tokens(rng))
        return self.model.invent(rng, avoid, origin), usage

    def synthesize(self, rng: random.Random, invention):
        usage = self._request(rng, costs.sample_implementation_tokens(rng))
        return self.model.synthesize(rng, invention), usage

    def fix(self, rng: random.Random, impl, goal: int):
        usage = self._request(rng, costs.sample_bugfix_round_tokens(rng))
        return self.model.fix(rng, impl, goal), usage

    def generate_tests(self, rng: random.Random, invention):
        usage = self._request(rng, costs.sample_bugfix_round_tokens(rng))
        return self.model.generate_tests(rng, invention), usage
