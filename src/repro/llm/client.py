"""The LLM API client: latency, token accounting, and throttling errors.

Wraps :class:`SimulatedLLM` behind a ChatCompletion-shaped interface.  Every
request consumes virtual wait/prepare time and tokens (Tables 2-3); a small
per-request failure probability reproduces the API throttling/timeouts that
killed 24 of the paper's 100 unsupervised invocations.

With a :class:`~repro.resilience.retry.RetryPolicy`, throttled requests are
retried with exponential backoff on the virtual clock; the retries and
backoff seconds are reported in :class:`ChatUsage` so the pipeline's cost
ledger can account for them.  Without a policy (the default, matching the
paper's unprotected setup) the random stream is untouched and a throttle
kills the request exactly as before.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.llm import costs
from repro.llm.model import SimulatedLLM
from repro.resilience.retry import RetryPolicy, run_with_retry
from repro.telemetry import TelemetrySession


class APIError(Exception):
    """An API-side failure (throttle / timeout)."""


@dataclass
class ChatUsage:
    tokens: int
    wait_seconds: float
    #: Transparent retry accounting: how many throttled attempts preceded
    #: the successful one, and the virtual seconds spent backing off.
    retries: int = 0
    backoff_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Wall time the request occupied, backoff included."""
        return self.wait_seconds + self.backoff_seconds


class LLMClient:
    """A thin, failure-prone transport in front of the model.

    ``failure_rate`` is per *request*; an invocation issues ~6 requests on
    average, so the default reproduces the ~24% per-invocation failure rate
    of §4.  ``retry_policy`` (off by default) absorbs throttles with a
    deterministic seeded backoff schedule instead of failing the request.
    """

    def __init__(
        self,
        model: SimulatedLLM | None = None,
        failure_rate: float = 0.040,
        retry_policy: RetryPolicy | None = None,
        telemetry: TelemetrySession | None = None,
    ) -> None:
        self.model = model or SimulatedLLM()
        self.failure_rate = failure_rate
        self.retry_policy = retry_policy
        #: Transport telemetry: ``llm_*`` counters, an ``llm_tokens``
        #: histogram, and per-request ``llm``/``retry`` events when the
        #: session carries a sink.  Emission consumes no RNG, so a telemetry
        #: session never perturbs the simulated request stream.
        self.telemetry = telemetry if telemetry is not None else TelemetrySession()
        self.requests = 0
        self.failures = 0
        self.retries = 0
        self.backoff_seconds = 0.0

    def _attempt(self, rng: random.Random, tokens: int) -> ChatUsage:
        self.requests += 1
        self.telemetry.metrics.inc("llm_requests")
        if rng.random() < self.failure_rate:
            self.failures += 1
            self.telemetry.metrics.inc("llm_failures")
            self.telemetry.emit("llm", "throttled", tokens=tokens)
            raise APIError("rate limited (simulated throttle/timeout)")
        usage = ChatUsage(tokens, costs.sample_wait_seconds(rng))
        self.telemetry.metrics.observe("llm_tokens", tokens)
        self.telemetry.emit(
            "llm", "ok", tokens=tokens, wait=round(usage.wait_seconds, 3)
        )
        return usage

    def _on_backoff(self, retry: int, pause: float) -> None:
        self.retries += 1
        self.backoff_seconds += pause
        self.telemetry.metrics.inc("llm_retries")
        self.telemetry.emit("retry", "llm", retry=retry, pause=round(pause, 3))

    def _request(self, rng: random.Random, tokens: int) -> ChatUsage:
        usage, retries, backoff = run_with_retry(
            self.retry_policy,
            rng,
            lambda: self._attempt(rng, tokens),
            retryable=(APIError,),
            on_backoff=self._on_backoff,
        )
        usage.retries = retries
        usage.backoff_seconds = backoff
        return usage

    # -- the three request kinds MetaMut issues ---------------------------

    def invent(self, rng: random.Random, avoid: set[str], origin: str):
        usage = self._request(rng, costs.sample_invention_tokens(rng))
        return self.model.invent(rng, avoid, origin), usage

    def synthesize(self, rng: random.Random, invention):
        usage = self._request(rng, costs.sample_implementation_tokens(rng))
        return self.model.synthesize(rng, invention), usage

    def fix(self, rng: random.Random, impl, goal: int):
        usage = self._request(rng, costs.sample_bugfix_round_tokens(rng))
        return self.model.fix(rng, impl, goal), usage

    def generate_tests(self, rng: random.Random, invention):
        usage = self._request(rng, costs.sample_bugfix_round_tokens(rng))
        return self.model.generate_tests(rng, invention), usage
