"""The first-draft fault model (Table 1's bug population).

A tentative LLM implementation may carry faults, each of which violates one
of the validation goals #1-#6 of §3.3.  Faults are *behavioural wrappers*
around the final (correct) mutator class: validation observes exactly what
the paper's validation loop observes, and each successful bug-fix round
removes one fault.

Category weights follow Table 1: mutator-not-compiling dominates (51.4%),
followed by compile-error mutants (33.6%); hangs are never auto-fixable
(0 fixed in Table 1 — mutators with a hang fault die in the loop).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from repro.muast.mutator import Mutator, MutatorCrash, MutatorHang


class FaultKind(enum.Enum):
    """Indexed by the validation goal the fault violates."""

    NOT_COMPILE = 1
    HANG = 2
    CRASH = 3
    NO_OUTPUT = 4
    NO_REWRITE = 5
    BAD_MUTANT = 6


#: Sampling weights for first-draft faults, shaped after Table 1's fixed-bug
#: census (55, 0*, 4, 11, 1, 36 — hangs appear rarely and kill the mutator).
FAULT_WEIGHTS = {
    FaultKind.NOT_COMPILE: 51,
    FaultKind.HANG: 2,
    FaultKind.CRASH: 5,
    FaultKind.NO_OUTPUT: 11,
    FaultKind.NO_REWRITE: 2,
    FaultKind.BAD_MUTANT: 34,
}

#: Human-readable snippets for the synthesized-source rendering of a fault.
FAULT_MARKERS = {
    FaultKind.NOT_COMPILE: "// BUG: unbalanced parenthesis in visitor guard",
    FaultKind.HANG: "// BUG: worklist loop never pops",
    FaultKind.CRASH: "// BUG: unchecked randElement on empty collection",
    FaultKind.NO_OUTPUT: "// BUG: early `return false` left from skeleton",
    FaultKind.NO_REWRITE: "// BUG: rewriter edits computed but not applied",
    FaultKind.BAD_MUTANT: "// BUG: replacement text drops a trailing brace",
}


@dataclass(frozen=True)
class Fault:
    kind: FaultKind

    @property
    def marker(self) -> str:
        return FAULT_MARKERS[self.kind]


def sample_faults(rng: random.Random, *, allow_hang: bool = False) -> list[Fault]:
    """Sample the fault set of a first-draft implementation.

    Roughly half of first drafts are correct (§3.2: "nearly half of the
    mutators are correct on the first attempt"); the rest carry a handful of
    faults (Table 1: 107 bugs across 27 faulty drafts ≈ 4 each).
    """
    if rng.random() < 0.44:
        return []
    n = max(1, min(10, int(rng.gauss(4.8, 2.2))))
    kinds = list(FAULT_WEIGHTS)
    weights = [FAULT_WEIGHTS[k] for k in kinds]
    if not allow_hang:
        weights[kinds.index(FaultKind.HANG)] = 0
    picked = rng.choices(kinds, weights=weights, k=n)
    # Duplicate kinds collapse per kind is fine — each instance is a distinct
    # bug occurrence the loop must fix (the paper counts occurrences).
    return [Fault(k) for k in picked]


class FaultyMutator(Mutator):
    """A mutator whose behaviour is degraded by its remaining faults.

    Wraps the real (eventually-correct) implementation; the ordering of
    fault effects mirrors the refinement loop's goal ordering so feedback is
    always about the *simplest* unmet goal.
    """

    def __init__(self, inner: Mutator, faults: list[Fault]) -> None:
        super().__init__(inner.rng)
        self.inner = inner
        self.faults = list(faults)
        self.name = inner.name
        self.description = inner.description

    def _has(self, kind: FaultKind) -> bool:
        return any(f.kind is kind for f in self.faults)

    def bind(self, ctx) -> None:
        super().bind(ctx)
        self.inner.bind(ctx)

    def get_rewriter(self):
        return self.inner.get_rewriter()

    def mutate(self) -> bool:
        if self._has(FaultKind.HANG):
            raise MutatorHang(f"{self.name} looped forever")
        if self._has(FaultKind.CRASH):
            raise MutatorCrash(f"{self.name}: randElement on empty collection")
        if self._has(FaultKind.NO_OUTPUT):
            return False
        changed = self.inner.mutate()
        if not changed:
            return False
        if self._has(FaultKind.NO_REWRITE):
            # Claims success but the edits never reach the rewriter.
            rewriter = self.inner.get_rewriter()
            rewriter._edits.clear()
            return True
        if self._has(FaultKind.BAD_MUTANT):
            # The replacement text is subtly broken (a stray token).
            rewriter = self.inner.get_rewriter()
            rewriter.insert_text_before(
                self.inner.get_ast_context().unit.range.end, "\n)"
            )
            return True
        return True
