"""The simulated LLM substrate.

The paper drives GPT-4 through OpenAI's ChatCompletion API.  Offline, we
substitute a deterministic simulated model that reproduces the *observable*
behaviour MetaMut depends on and the paper measures: which mutators get
invented, how often first-draft implementations carry which classes of bugs
(Table 1), how many tokens/QA rounds/seconds each stage costs (Tables 2-3),
and how often the API itself fails (24 of 100 unsupervised invocations).
"""

from repro.llm.client import APIError, ChatUsage, LLMClient
from repro.llm.costs import CostLedger, MutatorCost, StageCost
from repro.llm.faults import Fault, FaultKind, sample_faults
from repro.llm.model import SimulatedLLM
from repro.resilience.retry import RetryPolicy

__all__ = [
    "APIError",
    "ChatUsage",
    "RetryPolicy",
    "LLMClient",
    "CostLedger",
    "MutatorCost",
    "StageCost",
    "Fault",
    "FaultKind",
    "sample_faults",
    "SimulatedLLM",
]
