"""Token / QA-round / latency cost models, calibrated to Tables 2-3.

All times are *virtual* seconds — nothing sleeps.  The samplers are clipped
lognormals whose parameters were chosen so that a 100-run campaign lands near
the paper's reported min/max/median/mean.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

#: GPT-4 ChatCompletion pricing the paper's ~$0.5/mutator figure implies.
USD_PER_1K_TOKENS = 0.06


def _lognormal(rng: random.Random, median: float, sigma: float, lo: float, hi: float) -> float:
    value = median * math.exp(rng.gauss(0.0, sigma))
    return min(max(value, lo), hi)


def sample_invention_tokens(rng: random.Random) -> int:
    return int(_lognormal(rng, 1130, 0.35, 359, 2240))


def sample_implementation_tokens(rng: random.Random) -> int:
    return int(_lognormal(rng, 2488, 0.35, 372, 3870))


def sample_bugfix_round_tokens(rng: random.Random) -> int:
    # ~4 rounds consume ~4,935 tokens on average, long tail up to ~31k total.
    return int(_lognormal(rng, 1230, 0.58, 335, 8600))


def sample_wait_seconds(rng: random.Random) -> float:
    return _lognormal(rng, 40, 0.45, 11, 123)


def sample_prepare_seconds(rng: random.Random) -> float:
    return _lognormal(rng, 11, 0.75, 0.5, 69)


@dataclass
class StageCost:
    tokens: int = 0
    qa_rounds: int = 0
    seconds: float = 0.0

    def add(self, tokens: int, seconds: float, rounds: int = 1) -> None:
        self.tokens += tokens
        self.seconds += seconds
        self.qa_rounds += rounds


@dataclass
class MutatorCost:
    """Per-mutator generation cost, one row of the Table 2 population."""

    name: str
    invention: StageCost = field(default_factory=StageCost)
    implementation: StageCost = field(default_factory=StageCost)
    bugfix: StageCost = field(default_factory=StageCost)
    wait_seconds: list[float] = field(default_factory=list)
    prepare_seconds: list[float] = field(default_factory=list)
    #: Throttled attempts absorbed by the retry policy, and the virtual
    #: seconds spent backing off before each eventual success.  Kept out of
    #: ``wait_seconds`` so Table 3's wait/prepare distributions stay pure;
    #: stage ``seconds`` totals include backoff so wall time stays honest.
    retries: int = 0
    backoff_seconds: list[float] = field(default_factory=list)

    def record_transport(self, usage) -> None:
        """Per-request latency/retry accounting shared by every stage."""
        self.wait_seconds.append(usage.wait_seconds)
        self.retries += usage.retries
        if usage.backoff_seconds:
            self.backoff_seconds.append(usage.backoff_seconds)

    @property
    def total_backoff_seconds(self) -> float:
        return sum(self.backoff_seconds)

    @property
    def total_tokens(self) -> int:
        return self.invention.tokens + self.implementation.tokens + self.bugfix.tokens

    @property
    def total_rounds(self) -> int:
        return (
            self.invention.qa_rounds
            + self.implementation.qa_rounds
            + self.bugfix.qa_rounds
        )

    @property
    def total_seconds(self) -> float:
        return (
            self.invention.seconds
            + self.implementation.seconds
            + self.bugfix.seconds
        )

    @property
    def usd(self) -> float:
        return self.total_tokens / 1000.0 * USD_PER_1K_TOKENS


@dataclass
class CostLedger:
    """All per-mutator costs of a generation campaign."""

    records: list[MutatorCost] = field(default_factory=list)

    def add(self, cost: MutatorCost) -> None:
        self.records.append(cost)

    def summarize(self, values: list[float]) -> dict[str, float]:
        if not values:
            return {"min": 0, "max": 0, "median": 0, "mean": 0}
        ordered = sorted(values)
        n = len(ordered)
        median = (
            ordered[n // 2]
            if n % 2
            else (ordered[n // 2 - 1] + ordered[n // 2]) / 2
        )
        return {
            "min": ordered[0],
            "max": ordered[-1],
            "median": median,
            "mean": sum(ordered) / n,
        }

    def table2(self) -> dict[str, dict[str, dict[str, float]]]:
        """The Table 2 structure: metric -> stage -> min/max/median/mean."""
        rows = self.records
        return {
            "Tokens": {
                "Invention": self.summarize([r.invention.tokens for r in rows]),
                "Implementation": self.summarize(
                    [r.implementation.tokens for r in rows]
                ),
                "Bug-Fixing": self.summarize([r.bugfix.tokens for r in rows]),
                "Total": self.summarize([r.total_tokens for r in rows]),
            },
            "QA": {
                "Bug-Fixing": self.summarize(
                    [r.bugfix.qa_rounds for r in rows]
                ),
                "Total": self.summarize([r.total_rounds for r in rows]),
            },
            "Time": {
                "Invention": self.summarize([r.invention.seconds for r in rows]),
                "Implementation": self.summarize(
                    [r.implementation.seconds for r in rows]
                ),
                "Bug-Fixing": self.summarize([r.bugfix.seconds for r in rows]),
                "Total": self.summarize([r.total_seconds for r in rows]),
            },
        }

    def table3(self) -> dict[str, dict[str, float]]:
        """Request/response latency (Table 3)."""
        waits = [w for r in self.records for w in r.wait_seconds]
        prepares = [p for r in self.records for p in r.prepare_seconds]
        return {
            "Wait for Response (s)": self.summarize(waits),
            "Prepare for Request (s)": self.summarize(prepares),
        }

    def retry_stats(self) -> dict[str, float]:
        """Campaign-wide retry/backoff accounting (resilience layer)."""
        return {
            "retries": sum(r.retries for r in self.records),
            "backoff_seconds": sum(
                r.total_backoff_seconds for r in self.records
            ),
            "retried_mutators": sum(1 for r in self.records if r.retries),
        }

    def mean_usd(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.usd for r in self.records) / len(self.records)

    # -- telemetry ---------------------------------------------------------

    def telemetry_snapshot(self) -> dict:
        """Campaign totals in one flat dict (virtual time; deterministic)."""
        return {
            "mutators": len(self.records),
            "total_tokens": sum(r.total_tokens for r in self.records),
            "total_rounds": sum(r.total_rounds for r in self.records),
            "total_seconds": round(
                sum(r.total_seconds for r in self.records), 3
            ),
            "mean_usd": round(self.mean_usd(), 4),
            **self.retry_stats(),
        }

    def export(self, metrics) -> None:
        """Publish the totals as ``llm_cost_*`` gauges on a registry."""
        for name, value in self.telemetry_snapshot().items():
            metrics.gauge(f"llm_cost_{name}", value)
