"""The simulated GPT-4.

Deterministic (given an RNG) stand-in for the LLM behind MetaMut.  It
answers the three prompt kinds the framework issues — invention, synthesis,
bug-fix — plus test generation.  Its "knowledge" is the mutator design space
itself: the validated library in :mod:`repro.mutators` (what the real GPT-4
eventually produced) and a set of *decoy* inventions with predetermined
failure fates, sized to §4.1's census of the 26 invalid unsupervised
mutators (6 refinement-loop deaths, 7 mismatched implementations, 10 with
unthorough test coverage, 3 duplicates).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.llm.faults import Fault, FaultKind, sample_faults
from repro.muast.mutator import Mutator
from repro.muast.registry import MutatorInfo, MutatorRegistry, global_registry

# Importing the library populates the global registry with all 118 mutators.
import repro.mutators  # noqa: F401  (registration side effect)


@dataclass(frozen=True)
class Invention:
    """Stage-1 output: a mutator name + description (+ its secret fate)."""

    name: str
    description: str
    action: str
    structure: str
    #: "valid" | "refine-death" | "mismatched" | "unthorough" | "duplicate"
    fate: str = "valid"
    #: For valid inventions: the registry entry this will converge to.
    registry_name: str | None = None


@dataclass
class Implementation:
    """Stage-2/3 artifact: a tentative or repaired mutator implementation."""

    invention: Invention
    base: MutatorInfo
    faults: list[Fault] = field(default_factory=list)
    #: Faults the LLM cannot repair (refinement-death decoys).
    unfixable: bool = False
    #: Passes automated validation but misbehaves on complex inputs
    #: (unthorough decoys) or under its description (mismatched decoys).
    latent_defect: str | None = None
    revision: int = 0

    @property
    def source(self) -> str:
        # Imported lazily: repro.metamut imports repro.llm at module level.
        from repro.metamut.template import render_implementation

        markers = [f.marker for f in self.faults]
        return render_implementation(self.base.cls, markers)

    def has_compile_fault(self) -> bool:
        return any(f.kind is FaultKind.NOT_COMPILE for f in self.faults)

    def instantiate(self, rng: random.Random) -> Mutator:
        """Build the runnable mutator with its remaining behaviour faults."""
        from repro.llm.faults import FaultyMutator

        inner = self.base.create(rng)
        inner.name = self.invention.name
        inner.description = self.invention.description
        behaviour_faults = [
            f for f in self.faults if f.kind is not FaultKind.NOT_COMPILE
        ]
        if not behaviour_faults:
            return inner
        return FaultyMutator(inner, behaviour_faults)


#: Decoy inventions: names/descriptions GPT-4 plausibly produces whose
#: implementations the paper's authors ultimately rejected (§4.1).
_DECOYS: list[tuple[str, str, str, str, str]] = [
    # fate "refine-death" (6): the loop never converges.
    ("ReorderSwitchCases", "This mutator permutes the case order of a switch statement.", "Swap", "SwitchStmt", "refine-death"),
    ("MergeNestedIfs", "This mutator merges a nested if pair into a single conjunction.", "Combine", "IfStmt", "refine-death"),
    ("FlattenCompoundStmt", "This mutator splices a nested compound statement into its parent.", "Destruct", "CompoundStmt", "refine-death"),
    ("RotateArgumentList", "This mutator rotates all arguments of a call by one position.", "Swap", "CallExpr", "refine-death"),
    ("HoistLoopInvariant", "This mutator hoists a loop-invariant statement out of a loop.", "Lift", "ForStmt", "refine-death"),
    ("SplitForIntoWhile", "This mutator splits a for loop into init, while, and step parts.", "Destruct", "ForStmt", "refine-death"),
    # fate "mismatched" (7): valid-looking but diverges from its description.
    ("InverseUnaryOperatorV2", "This mutator selects a unary operation and inverses it, e.g. -a becomes -(-a).", "Inverse", "UnaryOperator", "mismatched"),
    ("NegateAllComparisons", "This mutator negates every comparison in a function.", "Inverse", "ComparisonExpr", "mismatched"),
    ("SwapGlobalInitializers", "This mutator swaps the initializers of two global variables.", "Swap", "VarDecl", "mismatched"),
    ("PromoteParamToGlobal", "This mutator promotes a parameter into a global variable.", "Lift", "ParmVarDecl", "mismatched"),
    ("ReplaceWithSizeof", "This mutator replaces an integer expression by a sizeof expression.", "Modify", "SizeofExpr", "mismatched"),
    ("CollapseTernary", "This mutator collapses a conditional operator to its taken branch.", "Destruct", "ConditionalOperator", "mismatched"),
    ("DistributeAnd", "This mutator distributes a logical AND over a logical OR.", "Destruct", "LogicalExpr", "mismatched"),
    # fate "unthorough" (10): pass the LLM tests, fail the authors' tests.
    ("InlineSingleUseVariable", "This mutator inlines a variable used exactly once.", "Inline", "VarDecl", "unthorough"),
    ("SwapStructFields", "This mutator swaps two fields of a struct definition.", "Swap", "FieldDecl", "unthorough"),
    ("WidenAllShifts", "This mutator widens every shift amount by eight.", "Modify", "ShiftExpr", "unthorough"),
    ("DuplicateCaseBody", "This mutator duplicates the body of a switch case.", "Copy", "CaseStmt", "unthorough"),
    ("StringToCharArray", "This mutator rewrites a string literal into a char array initializer.", "Modify", "StringLiteral", "unthorough"),
    ("UnrollInnerLoop", "This mutator fully unrolls an inner loop with constant bounds.", "Copy", "ForStmt", "unthorough"),
    ("MergeDeclarations", "This mutator merges adjacent declarations of the same type.", "Combine", "VarDecl", "unthorough"),
    ("PushNegationInward", "This mutator pushes a logical negation into a comparison.", "Inverse", "LogicalExpr", "unthorough"),
    ("ExtractCondition", "This mutator extracts a branch condition into a fresh variable.", "Lift", "IfStmt", "unthorough"),
    ("RenameAllLocals", "This mutator renames every local variable in a function.", "Modify", "VarDecl", "unthorough"),
    # fate "duplicate" (3): re-inventions of existing mutators.
    ("ReplaceIntegerConstant", "This mutator randomly selects an integer constant and replaces it with a random value.", "Modify", "IntegerLiteral", "duplicate"),
    ("FlipRelationalOperator", "This mutator flips a relational operator to a different one.", "Modify", "ComparisonExpr", "duplicate"),
    ("SwapIfBranches", "This mutator swaps the branches of an if statement and negates its condition.", "Swap", "IfStmt", "duplicate"),
]


class SimulatedLLM:
    """Deterministic GPT-4 stand-in (temperature 0.8, top-p 0.95 modelled by
    the RNG the caller supplies)."""

    def __init__(
        self,
        registry: MutatorRegistry | None = None,
        temperature: float = 0.8,
        top_p: float = 0.95,
    ) -> None:
        self.registry = registry or global_registry
        self.temperature = temperature
        self.top_p = top_p

    # ------------------------------------------------------------- stage 1

    def invent(
        self,
        rng: random.Random,
        avoid: set[str],
        origin: str = "unsupervised",
    ) -> Invention:
        """Sample a mutator name/description, honoring the sampling hints.

        Higher temperature widens the share of decoy (ultimately-invalid)
        inventions, approximating the beam-search-like sampling of §2.
        """
        decoys = [d for d in _DECOYS if d[0] not in avoid]
        pool = [
            info
            for info in self.registry.by_origin(origin)
            if info.name not in avoid
        ]
        # §4.1: of 76 completed invocations, 50 were valid — decoys make up
        # roughly a third of what the model dreams up.
        decoy_share = 0.34 * (self.temperature / 0.8)
        if decoys and (not pool or rng.random() < decoy_share):
            name, desc, action, structure, fate = decoys[
                rng.randrange(len(decoys))
            ]
            return Invention(name, desc, action, structure, fate)
        if not pool:
            # Nothing new left to invent: re-offer a duplicate.
            info = self.registry.by_origin(origin)[
                rng.randrange(len(self.registry.by_origin(origin)))
            ]
            return Invention(
                info.name, info.description, info.action, info.structure,
                "duplicate", registry_name=info.name,
            )
        info = pool[rng.randrange(len(pool))]
        return Invention(
            info.name, info.description, info.action, info.structure,
            "valid", registry_name=info.name,
        )

    # ------------------------------------------------------------- stage 2

    def synthesize(self, rng: random.Random, invention: Invention) -> Implementation:
        """One-shot template completion, with first-draft faults."""
        base = self._base_info(rng, invention)
        if invention.fate == "refine-death":
            # A structurally broken draft the loop can never converge on:
            # it always carries a hang or an unfixable compile error.
            kind = rng.choice([FaultKind.HANG, FaultKind.NOT_COMPILE])
            faults = [Fault(kind)] + sample_faults(rng)
            return Implementation(invention, base, faults, unfixable=True)
        faults = sample_faults(rng)
        latent = None
        if invention.fate in ("mismatched", "unthorough"):
            latent = invention.fate
        return Implementation(invention, base, faults, latent_defect=latent)

    def _base_info(self, rng: random.Random, invention: Invention) -> MutatorInfo:
        if invention.registry_name is not None:
            return self.registry.get(invention.registry_name)
        # Decoys borrow the behaviour of a structurally similar registry
        # mutator (their rendered source differs only in the header).
        candidates = [
            info
            for info in self.registry
            if info.structure == invention.structure
        ] or list(self.registry)
        return candidates[rng.randrange(len(candidates))]

    # ------------------------------------------------------------- stage 3

    def fix(
        self, rng: random.Random, impl: Implementation, goal: int
    ) -> Implementation:
        """Repair the fault behind the reported goal violation.

        Mirrors the paper's observations: ordinary faults are fixed (often
        one per round), while hang-class bugs defeat the model (§4.1: "LLMs
        fall short in providing correct fixes for complex bugs, such as
        those causing Mutator Hangs").
        """
        if impl.unfixable:
            # The model reshuffles the code without resolving the root cause.
            return replace(impl, revision=impl.revision + 1)
        remaining = list(impl.faults)
        for i, fault in enumerate(remaining):
            if fault.kind.value == goal:
                # Occasionally the first repair attempt misses (the loop
                # re-reports the same goal next round).
                if rng.random() < 0.12:
                    break
                del remaining[i]
                break
        else:
            if remaining:
                remaining.pop(0)
        return replace(
            impl, faults=remaining, revision=impl.revision + 1
        )

    # ----------------------------------------------------------- test gen

    def generate_tests(self, rng: random.Random, invention: Invention) -> list[str]:
        from repro.metamut.testgen import tests_for

        return tests_for(invention.structure, invention.description)
