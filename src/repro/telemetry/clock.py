"""The deterministic step clock telemetry timestamps come from.

Wall-clock timestamps are real and machine-dependent, so they can never be
part of determinism-compared state (the serial==parallel==incremental
contract on campaign results).  Telemetry therefore timestamps every event
with a :class:`StepClock` *sequence number* — a plain counter that advances
once per recorded event — and keeps wall-clock readings strictly as
annotations (the ``wall`` field of an event, the ``wall`` namespace of a
:class:`~repro.telemetry.metrics.MetricsRegistry`).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class StepClock:
    """A monotonically increasing event sequence counter."""

    seq: int = 0

    def tick(self) -> int:
        """Advance the clock and return the new timestamp."""
        self.seq += 1
        return self.seq

    def peek(self) -> int:
        """The current timestamp without advancing."""
        return self.seq
