"""The telemetry event schema and its validator.

Every event written to a JSONL sink is one flat dict:

``v``
    Schema version (currently 1).
``seq``
    Deterministic :class:`~repro.telemetry.clock.StepClock` timestamp —
    a non-negative integer, non-decreasing within one sink's stream.
``kind``
    One of :data:`EVENT_KINDS` (the subsystem that produced the event).
``name``
    The event's identifier within its kind (a stage name, a bug id, …).
``fields`` (optional)
    A dict of JSON-scalar details.
``wall`` (optional)
    A wall-clock annotation in seconds.  Wall readings live *only* here
    and in the metrics ``wall`` namespace; they never enter
    determinism-compared state.
"""

from __future__ import annotations

import json
from pathlib import Path

SCHEMA_VERSION = 1

#: Every subsystem that emits events.
EVENT_KINDS = frozenset(
    {
        "campaign",  # campaign lifecycle (start/end)
        "step",      # fuzzer steps that kept a mutant or crashed
        "crash",     # a new unique crash/hang discovery
        "coverage",  # coverage-trend samples
        "span",      # pipeline-stage spans (lex/parse/sema/irgen/opt/backend/…)
        "llm",       # LLM requests / invocations
        "retry",     # retry/backoff events (resilience layer)
        "quarantine",  # mutator circuit-breaker trips
        "cell",      # campaign-grid cell lifecycle (resilient runner)
        "fabric",    # lease/worker lifecycle (fabric supervisor)
    }
)

_ALLOWED_KEYS = frozenset({"v", "seq", "kind", "name", "fields", "wall"})
_SCALARS = (str, int, float, bool, type(None))


class EventSchemaError(ValueError):
    """An event violates the telemetry schema."""


def _check(cond: bool, message: str) -> None:
    if not cond:
        raise EventSchemaError(message)


def validate_event(event: object) -> None:
    """Raise :class:`EventSchemaError` unless ``event`` matches the schema."""
    _check(isinstance(event, dict), f"event is not a dict: {event!r}")
    assert isinstance(event, dict)
    extra = set(event) - _ALLOWED_KEYS
    _check(not extra, f"unknown event keys {sorted(extra)}")
    _check(event.get("v") == SCHEMA_VERSION, f"bad schema version {event.get('v')!r}")
    seq = event.get("seq")
    _check(isinstance(seq, int) and not isinstance(seq, bool) and seq >= 0,
           f"bad seq {seq!r}")
    _check(event.get("kind") in EVENT_KINDS, f"unknown kind {event.get('kind')!r}")
    _check(isinstance(event.get("name"), str) and bool(event["name"]),
           f"bad name {event.get('name')!r}")
    if "wall" in event:
        wall = event["wall"]
        _check(isinstance(wall, (int, float)) and not isinstance(wall, bool)
               and wall >= 0, f"bad wall annotation {wall!r}")
    if "fields" in event:
        fields = event["fields"]
        _check(isinstance(fields, dict), f"fields is not a dict: {fields!r}")
        for key, value in fields.items():
            _check(isinstance(key, str), f"non-string field key {key!r}")
            _check(
                isinstance(value, _SCALARS)
                or (isinstance(value, list)
                    and all(isinstance(v, _SCALARS) or isinstance(v, list)
                            for v in value)),
                f"field {key!r} is not JSON-scalar shaped: {value!r}",
            )


def validate_jsonl(path: str | Path) -> int:
    """Validate one JSONL event file; returns the number of events.

    Checks every line parses, matches the schema, and that ``seq`` is
    non-decreasing within the file (rotation splits one stream over several
    files, so cross-file ordering is the caller's concern).
    """
    count = 0
    last_seq = -1
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError as exc:
                raise EventSchemaError(f"{path}:{lineno}: not JSON: {exc}") from exc
            try:
                validate_event(event)
            except EventSchemaError as exc:
                raise EventSchemaError(f"{path}:{lineno}: {exc}") from exc
            _check(event["seq"] >= last_seq,
                   f"{path}:{lineno}: seq went backwards "
                   f"({event['seq']} < {last_seq})")
            last_seq = event["seq"]
            count += 1
    return count
