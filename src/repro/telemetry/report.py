"""Crash-triage reports: Table 5/6-style summaries from campaign results.

Renders, from one ``CampaignResult`` or a checkpointed grid of them:

* the per-cell throughput/coverage/crash table (Table 5's shape),
* the per-module unique-crash census (Table 6's shape, canonical four
  modules always present),
* the crash-discovery timeline over virtual hours, and
* per-bug trigger pointers — optionally materialized as one minimized
  source file per unique crash (``--triggers-dir``).

Everything here is a pure function of already-recorded campaign state; the
report generator never reruns a fuzzer and never mutates a checkpoint.

Usage::

    python -m repro.telemetry.report --checkpoint-dir runs/ckpt
    python -m repro.telemetry.report --result result.json --json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.fuzzing.campaign import CampaignResult
from repro.fuzzing.crash import CANONICAL_MODULES, CrashLog
from repro.resilience.checkpoint import CheckpointStore, sanitize_key
from repro.telemetry.metrics import merge_stats


def load_results(checkpoint_dir: str | Path) -> list[tuple[str, CampaignResult]]:
    """(cell key, result) for every successful checkpointed cell, key-sorted."""
    store = CheckpointStore(checkpoint_dir)
    results = []
    for key in store.keys():
        payload = store.load(key)
        if payload and payload.get("ok") and "result" in payload:
            results.append((key, CampaignResult.from_json(payload["result"])))
    return results


def merge_crashes(results: "list[CampaignResult]") -> CrashLog:
    """One grid-wide log: per signature, the earliest discovery wins."""
    merged = CrashLog()
    for result in results:
        log = result.crashes
        for sig, rec in log.records.items():
            if sig in merged.records and merged.first_seen[sig] <= log.first_seen[sig]:
                continue
            merged.records[sig] = rec
            merged.first_seen[sig] = log.first_seen[sig]
            merged.triggers[sig] = log.triggers.get(sig, "")
    return merged


# -- structured (JSON) form -------------------------------------------------


def triage_data(results: "list[tuple[str, CampaignResult]]") -> dict:
    """The report as plain data (the ``--json`` output)."""
    crashes = merge_crashes([r for _, r in results])
    return {
        "cells": [
            {
                "key": key,
                "fuzzer": r.fuzzer,
                "compiler": r.compiler,
                "steps": r.steps,
                "compiled": r.compiled,
                "total": r.total,
                "compilable_ratio": round(r.compilable_ratio, 4),
                "throughput_total": r.throughput_total,
                "final_coverage": r.final_coverage,
                "unique_crashes": len(r.crashes),
            }
            for key, r in results
        ],
        "census": crashes.by_module(),
        "timeline": [[t, n] for t, n in crashes.timeline()],
        "crashes": [
            {
                "bug_id": rec.bug_id,
                "module": rec.module,
                "kind": rec.kind,
                "message": rec.message,
                "first_seen": crashes.first_seen[sig],
                "trigger_bytes": len(crashes.triggers.get(sig, "")),
            }
            for sig, rec in sorted(
                crashes.records.items(),
                key=lambda item: (crashes.first_seen[item[0]], item[1].bug_id),
            )
        ],
        "stats": merge_stats([r.stats for _, r in results]),
    }


def write_triggers(crashes: CrashLog, directory: str | Path) -> dict[str, str]:
    """One minimized-source file per unique crash; bug id -> path."""
    out = Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    pointers: dict[str, str] = {}
    for i, (sig, rec) in enumerate(
        sorted(
            crashes.records.items(),
            key=lambda item: (crashes.first_seen[item[0]], item[1].bug_id),
        )
    ):
        path = out / f"{i:03d}-{sanitize_key(rec.bug_id)}.c"
        path.write_text(crashes.triggers.get(sig, "") or "/* no trigger recorded */\n")
        pointers[rec.bug_id] = str(path)
    return pointers


# -- text rendering ---------------------------------------------------------


def _rule(width: int = 66) -> str:
    return "-" * width


def render_cells(results: "list[tuple[str, CampaignResult]]") -> str:
    lines = [
        f"{'fuzzer':<10} {'compiler':<14} {'steps':>6} {'compil.':>8} "
        f"{'24h-total':>10} {'coverage':>9} {'crashes':>8}",
        _rule(),
    ]
    for _, r in results:
        lines.append(
            f"{r.fuzzer:<10} {r.compiler:<14} {r.steps:>6} "
            f"{r.compilable_ratio:>7.1%} {r.throughput_total:>10,} "
            f"{r.final_coverage:>9,} {len(r.crashes):>8}"
        )
    return "\n".join(lines)


def render_census(crashes: CrashLog) -> str:
    census = crashes.by_module()
    # Canonical four first (Table 6 order), any extra modules after.
    modules = list(CANONICAL_MODULES) + sorted(
        m for m in census if m not in CANONICAL_MODULES
    )
    lines = [f"{'module':<16} {'unique crashes':>14}", _rule(32)]
    for module in modules:
        lines.append(f"{module:<16} {census[module]:>14}")
    lines.append(_rule(32))
    lines.append(f"{'total':<16} {sum(census.values()):>14}")
    return "\n".join(lines)


def render_timeline(crashes: CrashLog, width: int = 50) -> str:
    curve = crashes.timeline()
    if not curve:
        return "(no crashes discovered)"
    peak = curve[-1][1]
    lines = []
    for t, n in curve:
        bar = "#" * max(1, round(n / peak * width))
        lines.append(f"{t:>7.2f}h {bar} {n}")
    return "\n".join(lines)


def render_triggers(
    crashes: CrashLog, pointers: "dict[str, str] | None" = None
) -> str:
    lines = []
    for sig, rec in sorted(
        crashes.records.items(),
        key=lambda item: (crashes.first_seen[item[0]], item[1].bug_id),
    ):
        trigger = crashes.triggers.get(sig, "")
        if pointers is not None:
            where = pointers.get(rec.bug_id, "(not written)")
        else:
            where = f"{len(trigger)} bytes recorded" if trigger else "(none)"
        lines.append(
            f"{rec.bug_id:<26} {rec.module:<12} {rec.kind:<8} "
            f"@{crashes.first_seen[sig]:.2f}h  {where}"
        )
    return "\n".join(lines) if lines else "(no crashes discovered)"


#: Compile-pipeline counters surfaced in the text report (when present in
#: the merged stats): middle-end reuse machinery plus the object<->buffer
#: bridge crossings — a flat-native campaign holds ``flat_decodes`` at zero.
PIPELINE_COUNTERS = (
    "middle_incremental_hits",
    "middle_session_hits",
    "fused_pass_runs",
    "flat_encodes",
    "flat_decodes",
)


def render_pipeline(stats: dict) -> str:
    lines = [f"{'counter':<26} {'value':>12}", _rule(40)]
    shown = False
    for key in PIPELINE_COUNTERS:
        value = stats.get(key)
        if value is None:
            continue
        shown = True
        lines.append(f"{key:<26} {value:>12,}")
    return "\n".join(lines) if shown else "(no pipeline counters recorded)"


def render_report(
    results: "list[tuple[str, CampaignResult]]",
    triggers_dir: "str | Path | None" = None,
) -> str:
    crashes = merge_crashes([r for _, r in results])
    pointers = (
        write_triggers(crashes, triggers_dir) if triggers_dir is not None else None
    )
    sections = [
        f"crash-triage report: {len(results)} cell(s), "
        f"{len(crashes)} unique crash(es)",
        "",
        "== per-cell results (Table 5 shape) ==",
        render_cells(results),
        "",
        "== compile pipeline (middle-end reuse + IR bridge) ==",
        render_pipeline(merge_stats([r.stats for _, r in results])),
        "",
        "== unique crashes by module (Table 6 shape) ==",
        render_census(crashes),
        "",
        "== discovery timeline (virtual hours) ==",
        render_timeline(crashes),
        "",
        "== triggers ==",
        render_triggers(crashes, pointers),
    ]
    return "\n".join(sections)


# -- CLI --------------------------------------------------------------------


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.report",
        description="Render a crash-triage report from campaign results.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--checkpoint-dir",
        help="a run_resilient checkpoint directory (one JSON per cell)",
    )
    source.add_argument(
        "--result", help="a single CampaignResult JSON file (to_json output)"
    )
    parser.add_argument(
        "--triggers-dir",
        help="write each unique crash's minimized trigger source here",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit structured JSON instead of text"
    )
    args = parser.parse_args(argv)

    if args.checkpoint_dir is not None:
        results = load_results(args.checkpoint_dir)
        if not results:
            print(
                f"no successful cell checkpoints under {args.checkpoint_dir}",
                file=sys.stderr,
            )
            return 1
    else:
        payload = json.loads(Path(args.result).read_text())
        result = CampaignResult.from_json(payload)
        results = [(f"{result.fuzzer}-{result.compiler}", result)]

    if args.json:
        data = triage_data(results)
        if args.triggers_dir:
            data["triggers"] = write_triggers(
                merge_crashes([r for _, r in results]), args.triggers_dir
            )
        print(json.dumps(data, indent=2, sort_keys=True))
    else:
        print(render_report(results, triggers_dir=args.triggers_dir))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
