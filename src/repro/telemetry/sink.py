"""JSONL event sinks with size-bounded rotation.

A sink is a plain ``write(event: dict)`` target.  :class:`JSONLSink` appends
one JSON object per line to a file and rotates it once it exceeds
``max_bytes``: the current file moves to ``<path>.1``, ``.1`` to ``.2`` and
so on, dropping anything beyond ``max_files`` rotated generations.  The
live stream is therefore always at ``path`` and history ages outward.

Sink bookkeeping (events written, rotations) lives on the sink object, not
in any metrics registry, so enabling a sink can never change
determinism-compared campaign stats.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

DEFAULT_MAX_BYTES = 4_000_000
DEFAULT_MAX_FILES = 8


class NullSink:
    """Discards every event (telemetry disabled)."""

    events_written = 0

    def write(self, event: dict) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class JSONLSink:
    """One JSONL file per telemetry stream, rotated by size."""

    def __init__(
        self,
        path: str | os.PathLike,
        max_bytes: int = DEFAULT_MAX_BYTES,
        max_files: int = DEFAULT_MAX_FILES,
    ) -> None:
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.max_files = max(max_files, 1)
        self.events_written = 0
        self.rotations = 0
        self._bytes = 0
        self._fh = open(self.path, "w", encoding="utf-8")

    def _rotated(self, index: int) -> Path:
        return self.path.with_name(f"{self.path.name}.{index}")

    def _rotate(self) -> None:
        self._fh.close()
        oldest = self._rotated(self.max_files)
        if oldest.exists():
            oldest.unlink()
        for index in range(self.max_files - 1, 0, -1):
            src = self._rotated(index)
            if src.exists():
                os.replace(src, self._rotated(index + 1))
        os.replace(self.path, self._rotated(1))
        self.rotations += 1
        self._bytes = 0
        self._fh = open(self.path, "w", encoding="utf-8")

    def write(self, event: dict) -> None:
        line = json.dumps(event, sort_keys=True, default=str) + "\n"
        if self._bytes and self._bytes + len(line) > self.max_bytes:
            self._rotate()
        self._fh.write(line)
        self._bytes += len(line)
        self.events_written += 1

    def flush(self) -> None:
        if not self._fh.closed:
            self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def files(self) -> list[Path]:
        """Every file of the stream, oldest first, live file last."""
        rotated = [
            self._rotated(i)
            for i in range(self.max_files, 0, -1)
            if self._rotated(i).exists()
        ]
        return rotated + ([self.path] if self.path.exists() else [])

    def __enter__(self) -> "JSONLSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
