"""Deterministic metrics: counters, gauges, histograms — plus a wall namespace.

The registry is the single stats store for a fuzzing run.  Its three
deterministic families (counters, gauges, histograms) hold only values that
are pure functions of the run's inputs — they may appear in
determinism-compared campaign stats.  Wall-clock profile data (span
durations, stage timings) goes in the separate ``wall`` namespace, which
:meth:`MetricsRegistry.snapshot` never includes; callers that want the
profile ask for :meth:`MetricsRegistry.wall_snapshot` explicitly.  That
split is what lets ``stats_snapshot()`` stay comparison-safe without every
caller remembering to strip timing keys.

Per-cell registries merge deterministically: counters and histograms sum,
gauges take the max, and derived ratios are recomputed after the fold (a
sum of ratios is meaningless).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

#: Default histogram bucket upper bounds (powers of a 1/5/10 ladder).
DEFAULT_BOUNDS = (1, 5, 10, 50, 100, 500, 1000, 5000, 10000)

#: Derived-ratio stats keys recomputed (never summed) by :func:`merge_stats`,
#: mapped to their (numerator, denominator) source keys.
DERIVED_RATES = {
    "cache_hit_rate": ("cache_hits", "cache_misses"),
    "cache_eviction_rate": ("cache_evictions", "cache_misses"),
    "middle_session_hit_rate": ("middle_session_hits", "middle_session_misses"),
    "attempts_per_step": ("attempts", "steps"),
}


@dataclass
class Histogram:
    """Fixed-bucket histogram; deterministic and order-independent to merge."""

    bounds: tuple = DEFAULT_BOUNDS
    counts: list = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    min: float | None = None
    max: float | None = None

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.total += other.total
        for attr in ("min", "max"):
            theirs = getattr(other, attr)
            if theirs is None:
                continue
            ours = getattr(self, attr)
            picked = theirs if ours is None else (
                min(ours, theirs) if attr == "min" else max(ours, theirs)
            )
            setattr(self, attr, picked)

    def snapshot(self) -> dict:
        buckets = {f"le_{bound}": n for bound, n in zip(self.bounds, self.counts)}
        buckets["inf"] = self.counts[-1]
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "min": self.min,
            "max": self.max,
            "buckets": buckets,
        }


class MetricsRegistry:
    """Counters, gauges, histograms, and the wall-clock annotation namespace."""

    def __init__(self) -> None:
        #: Deterministic cumulative counters.  Exposed as a plain dict so a
        #: fuzzer's ``self.stats`` can *be* this mapping — ``stats_snapshot``
        #: is then literally a view over the registry.
        self.counters: dict = {}
        self.gauges: dict = {}
        self.histograms: dict[str, Histogram] = {}
        #: Wall-clock seconds by span/stage name.  Never part of
        #: :meth:`snapshot`; spans accumulate here.
        self.wall: dict = {}

    # -- recording ---------------------------------------------------------

    def inc(self, name: str, n: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float, bounds: tuple | None = None) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = Histogram(bounds=bounds if bounds is not None else DEFAULT_BOUNDS)
            self.histograms[name] = hist
        hist.observe(value)

    def add_wall(self, name: str, seconds: float) -> None:
        self.wall[name] = self.wall.get(name, 0.0) + seconds

    # -- views -------------------------------------------------------------

    def snapshot(self) -> dict:
        """The deterministic state only — safe to compare across runs."""
        snap: dict = dict(self.counters)
        if self.gauges:
            snap["gauges"] = dict(self.gauges)
        if self.histograms:
            snap["histograms"] = {
                name: hist.snapshot()
                for name, hist in sorted(self.histograms.items())
            }
        return snap

    def wall_snapshot(self) -> dict:
        """Wall-clock profile, rounded; strictly outside compared state."""
        return {name: round(secs, 4) for name, secs in sorted(self.wall.items())}

    # -- merging -----------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (counters/histograms sum, gauges max)."""
        for name, value in other.counters.items():
            self.inc(name, value)
        for name, value in other.gauges.items():
            current = self.gauges.get(name)
            self.gauges[name] = value if current is None else max(current, value)
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = Histogram(bounds=hist.bounds)
                mine = self.histograms[name]
            mine.merge(hist)
        for name, secs in other.wall.items():
            self.add_wall(name, secs)


def _merge_layer(snapshots: Iterable[dict]) -> dict:
    """One fold layer: sums, event-list counters, and dict recursion."""
    merged: dict = {}
    for snap in snapshots:
        for key, value in snap.items():
            if key in DERIVED_RATES:
                continue
            if isinstance(value, bool):
                merged.setdefault(key, value)
            elif isinstance(value, (int, float)):
                merged[key] = merged.get(key, 0) + value
            elif isinstance(value, list):
                # Event lists merge as a counter dict: the same mutator
                # quarantined in N cells must count N times, not collapse
                # into a set.  Counting is commutative, so fold order
                # still cannot change the result; re-merging an
                # already-merged summary sums the counters via the dict
                # branch below.
                counts = merged.get(key)
                if not isinstance(counts, dict):
                    counts = {}
                for item in value:
                    counts[item] = counts.get(item, 0) + 1
                merged[key] = dict(sorted(counts.items()))
            elif isinstance(value, dict):
                merged[key] = _merge_layer([merged.get(key, {}), value])
            else:
                merged.setdefault(key, value)
    return merged


def merge_stats(snapshots: Iterable[dict]) -> dict:
    """Deterministically fold per-cell stats snapshots into one summary.

    Numeric values sum, event lists merge as ``value -> count`` counter
    dicts (multiplicity preserved), nested dicts recurse, and the known
    derived ratios of :data:`DERIVED_RATES` are recomputed — at the top
    level only, so a nested counter schema that happens to reuse a source
    key (e.g. per-mutator ``attempts``) never grows spurious rate keys —
    from their merged numerator/denominator instead of being
    (meaninglessly) summed.  Fold order does not matter for the result, so
    serial and parallel campaigns merge to identical summaries.
    """
    merged = _merge_layer(snapshots)
    for rate, (num, den) in DERIVED_RATES.items():
        if num in merged or den in merged:
            denominator = merged.get(den, 0)
            if rate.endswith("_hit_rate"):
                # hits/(hits+misses): the "denominator" source key is the
                # miss counter, not the whole population.
                denominator = merged.get(num, 0) + merged.get(den, 0)
            merged[rate] = (
                merged.get(num, 0) / denominator if denominator else 0.0
            )
    return merged
