"""Span tracing for pipeline stages.

A span measures one named region of work (``lex``, ``parse``, ``sema``,
``irgen``, ``opt``, ``backend``, ``mutate``, ``invention``, …).  Its
wall-clock duration accumulates into the tracer's ``timings`` mapping (the
compiler's ``stage_timings`` Counter, or a registry's ``wall`` namespace)
and, when a sink is attached, the span also lands in the event stream with
a deterministic step-clock ``seq`` and the duration as a ``wall``
*annotation*.  Spans never touch deterministic metrics, so tracing on vs.
off cannot change compared campaign state.

``span(tracer, name)`` with ``tracer=None`` is a full no-op (not even a
``perf_counter`` call), which is how the scattered ``t0 = perf_counter()``
pairs of the cache/middle-end hot paths were replaced without taxing
uncached runs.
"""

from __future__ import annotations

import time

from repro.telemetry.clock import StepClock
from repro.telemetry.events import SCHEMA_VERSION


class Span:
    """One timed region; a lightweight context manager."""

    __slots__ = ("tracer", "name", "fields", "_t0")

    def __init__(self, tracer: "Tracer | None", name: str, fields: dict | None) -> None:
        self.tracer = tracer
        self.name = name
        self.fields = fields

    def __enter__(self) -> "Span":
        if self.tracer is not None:
            self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self.tracer
        if tracer is None:
            return False
        duration = time.perf_counter() - self._t0
        timings = tracer.timings
        if timings is not None:
            timings[self.name] = timings.get(self.name, 0.0) + duration
        sink = tracer.sink
        if sink is not None:
            event: dict = {
                "v": SCHEMA_VERSION,
                "seq": tracer.clock.tick(),
                "kind": "span",
                "name": self.name,
                "wall": round(duration, 6),
            }
            fields = self.fields
            if exc_type is not None:
                fields = dict(fields or ())
                fields["error"] = exc_type.__name__
            if fields:
                event["fields"] = fields
            sink.write(event)
        return False


class Tracer:
    """A span factory bound to a timings mapping and an optional sink."""

    def __init__(
        self,
        timings: dict | None = None,
        sink=None,
        clock: StepClock | None = None,
    ) -> None:
        self.timings = timings
        self.sink = sink
        self.clock = clock if clock is not None else StepClock()

    def span(self, name: str, **fields) -> Span:
        return Span(self, name, fields or None)


def span(tracer: Tracer | None, name: str, **fields) -> Span:
    """A span on ``tracer``, or a no-op when no tracer is in play."""
    return Span(tracer, name, fields or None)
