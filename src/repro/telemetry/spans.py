"""Span tracing for pipeline stages.

A span measures one named region of work (``lex``, ``parse``, ``sema``,
``irgen``, ``opt``, ``backend``, ``mutate``, ``invention``, …).  Its
wall-clock duration accumulates into the tracer's ``timings`` mapping (the
compiler's ``stage_timings`` Counter, or a registry's ``wall`` namespace)
and, when a sink is attached, the span also lands in the event stream with
a deterministic step-clock ``seq`` and the duration as a ``wall``
*annotation*.  Spans never touch deterministic metrics, so tracing on vs.
off cannot change compared campaign state.

``span(tracer, name)`` with ``tracer=None`` returns a shared no-op singleton
(not even an allocation), which is how the scattered ``t0 = perf_counter()``
pairs of the cache/middle-end hot paths were replaced without taxing
uncached runs.  Field-less spans on a live tracer are pre-bound: each
``(tracer, name)`` pair reuses one :class:`Span` instance, so the per-stage
cost with telemetry on is two ``perf_counter`` calls and a dict update, not
an object allocation per stage per compile.  Entry times are kept as a
per-instance LIFO stack, so a reused span stays correct even if the same
stage name ever re-enters recursively.
"""

from __future__ import annotations

import time

from repro.telemetry.clock import StepClock
from repro.telemetry.events import SCHEMA_VERSION


class Span:
    """One timed region; a lightweight, reusable context manager."""

    __slots__ = ("tracer", "name", "fields", "_starts")

    def __init__(self, tracer: "Tracer | None", name: str, fields: dict | None) -> None:
        self.tracer = tracer
        self.name = name
        self.fields = fields
        self._starts: list[float] = []

    def __enter__(self) -> "Span":
        if self.tracer is not None:
            self._starts.append(time.perf_counter())
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self.tracer
        if tracer is None:
            return False
        duration = time.perf_counter() - self._starts.pop()
        timings = tracer.timings
        if timings is not None:
            timings[self.name] = timings.get(self.name, 0.0) + duration
        sink = tracer.sink
        if sink is not None:
            event: dict = {
                "v": SCHEMA_VERSION,
                "seq": tracer.clock.tick(),
                "kind": "span",
                "name": self.name,
                "wall": round(duration, 6),
            }
            fields = self.fields
            if exc_type is not None:
                fields = dict(fields or ())
                fields["error"] = exc_type.__name__
            if fields:
                event["fields"] = fields
            sink.write(event)
        return False


class Tracer:
    """A span factory bound to a timings mapping and an optional sink."""

    def __init__(
        self,
        timings: dict | None = None,
        sink=None,
        clock: StepClock | None = None,
    ) -> None:
        self.timings = timings
        self.sink = sink
        self.clock = clock if clock is not None else StepClock()
        #: Field-less spans pre-bound by name; one reusable instance each.
        self._bound: dict[str, Span] = {}

    def span(self, name: str, **fields) -> Span:
        if fields:
            return Span(self, name, fields)
        bound = self._bound.get(name)
        if bound is None:
            bound = self._bound[name] = Span(self, name, None)
        return bound


class _NoopSpan:
    """The do-nothing span; one shared instance serves every tracerless call."""

    __slots__ = ()

    #: Mirrors :attr:`Span.tracer` for callers that introspect it.
    tracer = None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP = _NoopSpan()


def span(tracer: Tracer | None, name: str, **fields):
    """A span on ``tracer``, or the shared no-op when no tracer is in play."""
    if tracer is None:
        return _NOOP
    return tracer.span(name, **fields)
