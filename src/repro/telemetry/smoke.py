"""Telemetry CI smoke: schema-valid events, result parity with sink off.

Runs one short campaign grid four ways — telemetry off, telemetry on
(serial), telemetry on (parallel), and resilient-with-checkpoints — then
asserts the telemetry layer's two contracts:

1. every JSONL event file written is schema-valid and non-empty, and
2. the fuzzing results are bit-identical (``CampaignResult.to_json``)
   whether the sink is attached or not, serial or parallel.

Finishes by rendering the crash-triage report from the checkpointed grid
(the acceptance path of ``python -m repro.telemetry.report``).
"""

from __future__ import annotations

import argparse
import json
import tempfile
from pathlib import Path

from repro.telemetry import validate_jsonl
from repro.telemetry.report import main as report_main

GRID_FUZZERS = ("uCFuzz.s", "AFL++")


def _jsonl_files(directory: Path) -> list[Path]:
    return sorted(directory.glob("*.jsonl*"))


def _results_json(results) -> list[dict]:
    return [r.to_json() for r in results]


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description="telemetry-smoke")
    parser.add_argument("--steps", type=int, default=30)
    args = parser.parse_args(argv)

    from repro.compiler.driver import default_compilers
    from repro.fuzzing.campaign import Campaign
    from repro.fuzzing.seedgen import generate_seeds
    from repro.muast.registry import global_registry

    def make_campaign(telemetry_dir: "str | None") -> Campaign:
        return Campaign(
            compilers=default_compilers(),
            seeds=generate_seeds(10),
            registry=global_registry,
            steps=args.steps,
            telemetry_dir=telemetry_dir,
        )

    with tempfile.TemporaryDirectory(prefix="telemetry-smoke-") as tmp:
        root = Path(tmp)
        baseline = _results_json(make_campaign(None).run(GRID_FUZZERS))

        serial_dir = root / "events-serial"
        serial = _results_json(
            make_campaign(str(serial_dir)).run(GRID_FUZZERS)
        )
        if serial != baseline:
            raise SystemExit(
                "telemetry-smoke: serial campaign results changed with the "
                "JSONL sink enabled"
            )

        parallel_dir = root / "events-parallel"
        parallel = _results_json(
            make_campaign(str(parallel_dir)).run(GRID_FUZZERS, parallelism=2)
        )
        if parallel != baseline:
            raise SystemExit(
                "telemetry-smoke: parallel campaign results diverged from "
                "the sink-off baseline"
            )

        events = 0
        files = _jsonl_files(serial_dir) + _jsonl_files(parallel_dir)
        if not files:
            raise SystemExit("telemetry-smoke: no event files were written")
        for path in files:
            events += validate_jsonl(path)
        if events <= 0:
            raise SystemExit("telemetry-smoke: event files are all empty")

        # Resilient grid with checkpoints + grid telemetry, then the triage
        # report over the checkpoint directory (the acceptance path).
        ckpt = root / "ckpt"
        grid_dir = root / "events-grid"
        campaign = make_campaign(str(grid_dir))
        outcomes = campaign.run_resilient(
            GRID_FUZZERS, checkpoint_dir=str(ckpt)
        )
        if not all(o.ok for o in outcomes):
            raise SystemExit("telemetry-smoke: a resilient cell failed")
        if _results_json([o.result for o in outcomes]) != baseline:
            raise SystemExit(
                "telemetry-smoke: resilient results diverged from baseline"
            )
        grid_events = validate_jsonl(grid_dir / "grid.jsonl")
        if grid_events < len(outcomes):
            raise SystemExit(
                "telemetry-smoke: grid.jsonl is missing cell lifecycle events"
            )
        triggers = root / "triggers"
        if report_main(
            ["--checkpoint-dir", str(ckpt), "--triggers-dir", str(triggers)]
        ) != 0:
            raise SystemExit("telemetry-smoke: triage report rendering failed")
        report_json = report_main(["--checkpoint-dir", str(ckpt), "--json"])
        if report_json != 0:
            raise SystemExit("telemetry-smoke: triage JSON rendering failed")

    print(
        json.dumps(
            {
                "cells": len(baseline),
                "steps": args.steps,
                "events_validated": events,
                "grid_events": grid_events,
                "parity": "ok",
            }
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
