"""Unified telemetry: deterministic metrics, span tracing, JSONL events.

The paper's evaluation is observational — coverage curves, unique-crash
timelines, per-module bug censuses (§5.1, Tables 5-7) — so the reproduction
carries one telemetry layer through every subsystem:

* :mod:`repro.telemetry.metrics` — counters/gauges/histograms (the fuzzer's
  ``stats_snapshot()`` is a view over this registry) plus a wall-clock
  namespace that is kept strictly out of determinism-compared state;
* :mod:`repro.telemetry.spans` — pipeline-stage tracing
  (lex/parse/sema/irgen/opt/backend, mutation, LLM stages);
* :mod:`repro.telemetry.sink` / :mod:`repro.telemetry.events` — a rotated
  JSONL event stream with a validated schema and deterministic step-clock
  timestamps;
* :mod:`repro.telemetry.report` — crash-triage reports (per-module census,
  discovery timeline, trigger pointers) rendered from campaign results.

Determinism contract: telemetry on vs. off produces bit-identical fuzzing
results.  Emission consumes no RNG, wall-clock readings live only in event
annotations and the ``wall`` namespace, and sink bookkeeping stays on the
sink object.
"""

from __future__ import annotations

import os

from repro.telemetry.clock import StepClock
from repro.telemetry.events import SCHEMA_VERSION, validate_event, validate_jsonl
from repro.telemetry.metrics import MetricsRegistry, merge_stats
from repro.telemetry.sink import JSONLSink, NullSink
from repro.telemetry.spans import Span, Tracer, span

__all__ = [
    "JSONLSink",
    "MetricsRegistry",
    "NullSink",
    "SCHEMA_VERSION",
    "Span",
    "StepClock",
    "TelemetrySession",
    "Tracer",
    "merge_stats",
    "span",
    "validate_event",
    "validate_jsonl",
]


class TelemetrySession:
    """One run's telemetry: a registry, a step clock, a tracer, and a sink.

    Every fuzzer owns a session; by default it is sink-less, so only the
    deterministic registry (which backs ``stats_snapshot()``) and the wall
    profile are live.  Attach a :class:`JSONLSink` (or pass one here) to
    additionally stream schema-validated events.
    """

    def __init__(
        self,
        sink=None,
        clock: StepClock | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.clock = clock if clock is not None else StepClock()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.sink = sink
        self.tracer = Tracer(
            timings=self.metrics.wall, sink=sink, clock=self.clock
        )

    @classmethod
    def to_jsonl(cls, path: str | os.PathLike, **sink_kwargs) -> "TelemetrySession":
        """A session streaming events to a rotated JSONL file."""
        return cls(sink=JSONLSink(path, **sink_kwargs))

    @property
    def enabled(self) -> bool:
        """Whether an event sink is attached."""
        return self.sink is not None

    def emit(
        self, kind: str, name: str, wall: float | None = None, /, **fields
    ) -> None:
        """Write one event to the sink (a no-op when none is attached).

        ``kind``/``name``/``wall`` are positional-only so event *fields* may
        freely use those names (e.g. a crash's ``kind=...`` detail).
        """
        if self.sink is None:
            return
        event: dict = {
            "v": SCHEMA_VERSION,
            "seq": self.clock.tick(),
            "kind": kind,
            "name": name,
        }
        if fields:
            event["fields"] = fields
        if wall is not None:
            event["wall"] = wall
        self.sink.write(event)

    def span(self, name: str, **fields) -> Span:
        """A traced span accumulating into this session's wall profile."""
        return self.tracer.span(name, **fields)

    def attach_compiler(self, compiler) -> None:
        """Route the compiler's stage spans into this session's sink/clock.

        The compiler keeps accumulating wall seconds into its own
        ``stage_timings``; attaching only adds event emission on the shared
        step clock.
        """
        compiler.tracer.sink = self.sink
        compiler.tracer.clock = self.clock

    def flush(self) -> None:
        if self.sink is not None:
            self.sink.flush()

    def close(self) -> None:
        if self.sink is not None:
            self.sink.close()
