"""The ``Mutator`` base class: μAST query/rewriting/check/helper APIs.

Mirrors Figure 6 of the paper.  A mutator is instantiated fresh for each
mutation attempt, bound to an :class:`ASTContext`, and asked to ``mutate()``;
if it returns ``True`` the rewriter's output is the mutant.

Runtime misbehaviour is modelled the way the paper's validation loop sees it:

* an unhandled exception inside ``mutate()`` is a *mutator crash* (goal #3);
* exceeding the traversal fuel is a *mutator hang* (goal #2);
* returning ``True`` without edits means the mutator *does not rewrite*
  (goal #5).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence, TypeVar

from repro.cast import ast_nodes as ast
from repro.cast import types as ct
from repro.cast.cache import FrontendCache, FrontendEntry
from repro.cast.parser import ParseError, parse
from repro.cast.rewriter import Rewriter
from repro.cast.sema import Sema
from repro.cast.source import SourceFile, SourceLocation, SourceRange
from repro.cast.unparse import declare, expr_text
from repro.muast.visitor import ASTVisitor

T = TypeVar("T")

#: Default traversal fuel; generous for real mutators, small enough that a
#: buggy quadratic/unbounded loop trips the hang detector quickly.
DEFAULT_FUEL = 2_000_000


class MutatorCrash(Exception):
    """The mutator implementation raised during ``mutate()``."""


class MutatorHang(Exception):
    """The mutator exceeded its execution fuel (simulated hang)."""


@dataclass
class ASTContext:
    """Everything a mutator may query about the program under mutation.

    Query results are memoized: mutators never modify the AST (all rewriting
    is textual, via the :class:`~repro.cast.rewriter.Rewriter`), so the node
    list of a translation unit is immutable for the context's lifetime and a
    context shared across mutation attempts answers repeat queries without
    re-walking the tree.
    """

    unit: ast.TranslationUnit
    source: SourceFile
    sema: Sema

    _all_nodes: list[ast.Node] | None = field(default=None, init=False, repr=False)
    _by_class: dict[tuple, list[ast.Node]] = field(
        default_factory=dict, init=False, repr=False
    )
    _functions: list[ast.FunctionDecl] | None = field(
        default=None, init=False, repr=False
    )
    #: Free-form memo space for derived, immutable query results (parent
    #: maps, candidate lists).  Values must be pure functions of the unit —
    #: the context may be shared across mutation attempts and fuzzing steps.
    memo: dict = field(default_factory=dict, init=False, repr=False)

    def all_nodes(self) -> list[ast.Node]:
        """The unit's nodes in pre-order (walked once, then memoized)."""
        if self._all_nodes is None:
            self._all_nodes = list(self.unit.walk())
        return self._all_nodes

    def node_count(self) -> int:
        return len(self.all_nodes())

    #: All functions with bodies, in declaration order.
    def function_definitions(self) -> list[ast.FunctionDecl]:
        if self._functions is None:
            self._functions = [f for f in self.unit.functions() if f.body is not None]
        return list(self._functions)

    def nodes_of_class(self, *classes: type) -> list[ast.Node]:
        got = self._by_class.get(classes)
        if got is None:
            got = [n for n in self.all_nodes() if isinstance(n, classes)]
            self._by_class[classes] = got
        # Callers may reorder/consume the result; hand out a copy.
        return list(got)


class Mutator:
    """Parent class of every generated mutator (the μAST facade)."""

    #: Subclasses (or the registry) set these.
    name: str = ""
    description: str = ""

    def __init__(self, rng: random.Random | None = None) -> None:
        self.rng = rng or random.Random(0)
        self._ctx: ASTContext | None = None
        self._rewriter: Rewriter | None = None
        self._fuel = DEFAULT_FUEL
        self._unique_counter = 0

    # -- binding ------------------------------------------------------------

    def bind(self, ctx: ASTContext) -> None:
        self._ctx = ctx
        self._rewriter = Rewriter(ctx.source)
        self._fuel = DEFAULT_FUEL
        self._unique_counter = 0

    def get_ast_context(self) -> ASTContext:
        assert self._ctx is not None, "mutator not bound to a program"
        return self._ctx

    def get_rewriter(self) -> Rewriter:
        assert self._rewriter is not None, "mutator not bound to a program"
        return self._rewriter

    # -- the mutation entry point -----------------------------------------------

    def mutate(self) -> bool:
        """Perform one mutation; return True iff the program changed."""
        raise NotImplementedError

    # -- traversal ---------------------------------------------------------------

    def traverse_ast(self, ctx: ASTContext | None = None) -> None:
        """Traverse the whole translation unit, firing visit_* callbacks."""
        ctx = ctx or self.get_ast_context()
        if isinstance(self, ASTVisitor):
            self._fuel_tick(ctx.node_count())
            ASTVisitor.traverse(self, ctx.unit)
        else:  # pragma: no cover - all mutators mix in ASTVisitor
            raise TypeError("mutator does not mix in ASTVisitor")

    def _fuel_tick(self, cost: int = 1) -> None:
        self._fuel -= cost
        if self._fuel <= 0:
            raise MutatorHang(f"{self.name or type(self).__name__} ran out of fuel")

    # -- query APIs (Figure 6) ------------------------------------------------------

    def get_source_text(self, node: ast.Node) -> str:
        """Extract the source code of a tree node."""
        return self.get_ast_context().source.slice(node.range)

    def find_str_loc_from(self, loc: SourceLocation, target: str) -> SourceLocation | None:
        """Locate ``target`` starting from ``loc``; None if absent."""
        idx = self.get_ast_context().source.text.find(target, loc.offset)
        return SourceLocation(idx) if idx >= 0 else None

    def find_braces_range(self, from_loc: SourceLocation) -> SourceRange | None:
        """Range of the first balanced ``{...}`` at or after ``from_loc``."""
        text = self.get_ast_context().source.text
        open_idx = text.find("{", from_loc.offset)
        if open_idx < 0:
            return None
        depth = 0
        for i in range(open_idx, len(text)):
            self._fuel_tick()
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
                if depth == 0:
                    return SourceRange.of(open_idx, i + 1)
        return None

    def rand_element(self, elements: Sequence[T]) -> T:
        """Choose a random element (μAST randElement)."""
        self._fuel_tick()
        if not elements:
            raise MutatorCrash("randElement called on an empty collection")
        return elements[self.rng.randrange(len(elements))]

    def rand_bool(self) -> bool:
        return self.rng.random() < 0.5

    def rand_int(self, lo: int, hi: int) -> int:
        return self.rng.randint(lo, hi)

    def collect(self, *classes: type) -> list[ast.Node]:
        """All nodes of the given AST classes, in source order."""
        return self.get_ast_context().nodes_of_class(*classes)

    def enclosing_function(self, node: ast.Node) -> ast.FunctionDecl | None:
        """The function definition whose range contains ``node``."""
        for fn in self.get_ast_context().function_definitions():
            if fn.range.contains(node.range):
                return fn
        return None

    def nodes_within(self, root: ast.Node, *classes: type) -> list[ast.Node]:
        return [n for n in root.walk() if isinstance(n, classes)]

    # -- rewriting APIs -----------------------------------------------------------

    def replace_text(self, rng: SourceRange, text: str) -> bool:
        return self.get_rewriter().replace_text(rng, text)

    def remove_text(self, rng: SourceRange) -> bool:
        return self.get_rewriter().remove_text(rng)

    def insert_text_before(self, loc: SourceLocation, text: str) -> bool:
        return self.get_rewriter().insert_text_before(loc, text)

    def insert_text_after(self, loc: SourceLocation, text: str) -> bool:
        return self.get_rewriter().insert_text_after(loc, text)

    def insert_before_stmt(self, stmt: ast.Stmt, text: str) -> bool:
        return self.insert_text_before(stmt.range.begin, text + "\n")

    def insert_after_stmt(self, stmt: ast.Stmt, text: str) -> bool:
        return self.insert_text_after(stmt.range.end, "\n" + text)

    def remove_parm_from_func_decl(self, fn: ast.FunctionDecl, parm: ast.ParmVarDecl) -> bool:
        """Remove a parameter from a function declaration, with its comma."""
        try:
            idx = fn.params.index(parm)
        except ValueError:
            return False
        return self._remove_list_item(
            [p.range for p in fn.params], idx, fn.lparen_loc, fn.rparen_loc
        )

    def remove_arg_from_expr(self, call: ast.CallExpr, index: int) -> bool:
        """Remove one argument from a call expression, with its comma."""
        if not 0 <= index < len(call.args):
            return False
        return self._remove_list_item(
            [a.range for a in call.args], index, call.lparen_loc, call.rparen_loc
        )

    def _remove_list_item(
        self,
        ranges: list[SourceRange],
        idx: int,
        lparen: SourceLocation | None,
        rparen: SourceLocation | None,
    ) -> bool:
        item = ranges[idx]
        if len(ranges) == 1:
            return self.remove_text(item)
        if idx + 1 < len(ranges):
            # Remove through the start of the next item (eats the comma).
            return self.remove_text(SourceRange(item.begin, ranges[idx + 1].begin))
        # Last item: remove from the end of the previous one.
        return self.remove_text(SourceRange(ranges[idx - 1].end, item.end))

    # -- semantic checking APIs -------------------------------------------------------

    def check_binop(self, op: str, lhs: ast.Expr, rhs: ast.Expr) -> bool:
        """Whether ``lhs op rhs`` would type-check."""
        if lhs.type is None or rhs.type is None:
            return False
        probe = Sema()
        return probe.binop_result(op, lhs.type, rhs.type) is not None

    def check_assignment(self, lhs_ty: ct.QualType, rhs_ty: ct.QualType) -> bool:
        """Whether an expression of ``rhs_ty`` may replace one of ``lhs_ty``."""
        return ct.assignable(lhs_ty, rhs_ty)

    def types_compatible(self, a: ct.QualType, b: ct.QualType) -> bool:
        return ct.compatible_for_swap(a, b)

    def is_modifiable_lvalue(self, expr: ast.Expr) -> bool:
        if expr.type is None or expr.type.const or expr.type.is_array():
            return False
        probe = Sema()
        return probe._is_lvalue(expr)

    # -- helpers ------------------------------------------------------------------------

    def generate_unique_name(self, base_name: str) -> str:
        """A fresh identifier not occurring anywhere in the source."""
        text = self.get_ast_context().source.text
        while True:
            self._unique_counter += 1
            candidate = f"{base_name}_{self._unique_counter}"
            if candidate not in text:
                return candidate

    def format_as_decl(self, ty: ct.QualType, placeholder: str) -> str:
        """Format a type + identifier as a declaration (μAST formatAsDecl)."""
        return declare(ty, placeholder)

    def default_value_for(self, ty: ct.QualType) -> str:
        """A constant expression usable where a value of ``ty`` is expected."""
        if ty.is_floating() or ty.is_complex():
            return "0.0"
        if ty.is_pointer():
            return "0"
        if ty.is_record():
            return f"(({ty.unqualified().spelling()}){{0}})"
        return "0"

    def expr_to_text(self, expr: ast.Expr) -> str:
        return expr_text(expr)


@dataclass
class MutationOutcome:
    """What happened when a mutator was applied to a program."""

    changed: bool
    mutant_text: str | None
    error: str | None = None
    #: The rewriter's edit script (``(begin, end, replacement)`` spans in
    #: parent coordinates) when the mutant was produced by textual rewriting;
    #: lets ``Compiler.compile`` take the incremental front-end path.
    edits: tuple = ()


def context_for_entry(entry: FrontendEntry) -> ASTContext:
    """The shared :class:`ASTContext` for a cached front-end result.

    Memoized on the entry so every mutation attempt against the same parent
    program shares one context (and hence one set of ``nodes_of_class``
    memos).  Requires ``entry.compilable``.
    """
    ctx = entry.memo.get("muast_ctx")
    if ctx is None:
        assert entry.unit is not None and entry.sema is not None
        ctx = ASTContext(entry.unit, entry.source, entry.sema)
        entry.memo["muast_ctx"] = ctx
    return ctx


def apply_mutator(
    mutator: Mutator,
    program_text: str,
    *,
    require_parse: bool = True,
    ctx: ASTContext | None = None,
    cache: FrontendCache | None = None,
) -> MutationOutcome:
    """Bind ``mutator`` to ``program_text``, run it, and collect the mutant.

    Parse or semantic failures in the *input* program yield an unchanged
    outcome (mutators only run on compilable inputs, as in the paper).
    Exceptions raised by the mutator propagate: the validation loop and the
    fuzzers interpret :class:`MutatorHang`/other exceptions as goal #2/#3
    violations.

    With ``cache``, the front end of ``program_text`` is looked up in (or
    inserted into) the shared :class:`FrontendCache` and all attempts on the
    same text share one parsed unit.  With ``ctx``, the caller supplies a
    ready-made context and the front end is skipped entirely; the caller
    vouches that ``ctx.source.text == program_text`` and that it compiles.
    """
    if ctx is None and cache is not None:
        entry = cache.front_end(program_text)
        if entry.unit is None:
            if require_parse:
                return MutationOutcome(False, None, error="input does not parse")
            if entry.parse_recursion:
                raise RecursionError(entry.parse_error)
            raise ParseError(entry.parse_error or "input does not parse")
        if entry.error_diagnostics:
            return MutationOutcome(False, None, error="input does not compile")
        ctx = context_for_entry(entry)
    if ctx is None:
        source = SourceFile(program_text)
        try:
            unit = parse(program_text)
        except (ParseError, RecursionError):
            if require_parse:
                return MutationOutcome(False, None, error="input does not parse")
            raise
        sema = Sema()
        diags = sema.analyze(unit)
        if any(d.severity == "error" for d in diags):
            return MutationOutcome(False, None, error="input does not compile")
        ctx = ASTContext(unit, source, sema)
    mutator.bind(ctx)
    changed = mutator.mutate()
    if not changed:
        return MutationOutcome(False, None)
    rewriter = mutator.get_rewriter()
    if not rewriter.has_edits:
        # Claimed a change but made no edits: surfaced as "does not rewrite".
        return MutationOutcome(True, program_text)
    return MutationOutcome(
        True, rewriter.rewritten_text(), edits=rewriter.edit_script()
    )
