"""Mutator registration (the ``RegisterMutator<T>`` analog).

Every mutator in :mod:`repro.mutators` registers itself with the global
registry together with its metadata: natural-language description, target
category, origin (supervised M_s / unsupervised M_u), and whether the paper
would classify it as "creative" (outside the strict
"[Action] on [Program Structure]" template).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.muast.mutator import Mutator

#: The five categories of §4.1.
CATEGORIES = ("Variable", "Expression", "Statement", "Function", "Type")

#: Origins: supervised (M_s) or unsupervised (M_u).
ORIGINS = ("supervised", "unsupervised")


@dataclass(frozen=True)
class MutatorInfo:
    name: str
    description: str
    cls: type[Mutator]
    category: str
    origin: str
    creative: bool = False
    #: Action / program-structure pair the invention stage would sample.
    action: str = ""
    structure: str = ""

    def create(self, rng: random.Random | None = None) -> Mutator:
        m = self.cls(rng)
        m.name = self.name
        m.description = self.description
        return m


class MutatorRegistry:
    """A name → :class:`MutatorInfo` map with category/origin queries."""

    def __init__(self) -> None:
        self._by_name: dict[str, MutatorInfo] = {}
        #: Memoized query results; any ``register`` invalidates them.
        self._query_cache: dict[tuple, list] = {}

    def register(self, info: MutatorInfo) -> None:
        if info.name in self._by_name:
            raise ValueError(f"duplicate mutator name {info.name!r}")
        if info.category not in CATEGORIES:
            raise ValueError(f"unknown category {info.category!r}")
        if info.origin not in ORIGINS:
            raise ValueError(f"unknown origin {info.origin!r}")
        self._by_name[info.name] = info
        self._query_cache.clear()

    def _cached_query(self, key: tuple, compute) -> list:
        got = self._query_cache.get(key)
        if got is None:
            got = compute()
            self._query_cache[key] = got
        # Callers may reorder/mutate the result; hand out a copy.
        return list(got)

    def __len__(self) -> int:
        return len(self._by_name)

    def __iter__(self) -> Iterator[MutatorInfo]:
        return iter(self._by_name.values())

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def get(self, name: str) -> MutatorInfo:
        return self._by_name[name]

    def names(self) -> list[str]:
        return self._cached_query(("names",), lambda: sorted(self._by_name))

    def by_origin(self, origin: str) -> list[MutatorInfo]:
        return self._cached_query(
            ("origin", origin),
            lambda: [m for m in self._by_name.values() if m.origin == origin],
        )

    def by_category(self, category: str) -> list[MutatorInfo]:
        return self._cached_query(
            ("category", category),
            lambda: [m for m in self._by_name.values() if m.category == category],
        )

    def supervised(self) -> list[MutatorInfo]:
        return self.by_origin("supervised")

    def unsupervised(self) -> list[MutatorInfo]:
        return self.by_origin("unsupervised")

    def create(self, name: str, rng: random.Random | None = None) -> Mutator:
        return self.get(name).create(rng)


#: The process-wide registry that ``register_mutator`` feeds.
global_registry = MutatorRegistry()


def register_mutator(
    name: str,
    description: str,
    *,
    category: str,
    origin: str,
    creative: bool = False,
    action: str = "",
    structure: str = "",
    registry: MutatorRegistry | None = None,
) -> Callable[[type[Mutator]], type[Mutator]]:
    """Class decorator: register a mutator with its metadata."""

    def decorator(cls: type[Mutator]) -> type[Mutator]:
        info = MutatorInfo(
            name=name,
            description=description,
            cls=cls,
            category=category,
            origin=origin,
            creative=creative,
            action=action,
            structure=structure,
        )
        # `is None`, not `or`: an empty registry is falsy via __len__.
        (global_registry if registry is None else registry).register(info)
        cls.name = name
        cls.description = description
        return cls

    return decorator
