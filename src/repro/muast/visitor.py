"""AST traversal with per-node-kind callbacks (the ASTVisitor of Figure 2).

A mutator subclasses :class:`ASTVisitor` and defines ``visit_IfStmt``,
``visit_BinaryOperator``, ... methods to collect mutation instances during
``traverse``.  Returning ``False`` from a callback stops descending into that
node's children, mirroring Clang's ``RecursiveASTVisitor`` contract.
"""

from __future__ import annotations

from repro.cast import ast_nodes as ast


class ASTVisitor:
    """Pre-order AST traversal dispatching to ``visit_<Kind>`` methods."""

    def traverse(self, node: ast.Node) -> None:
        """Visit ``node`` and (unless vetoed) its descendants."""
        method = getattr(self, f"visit_{node.kind}", None)
        descend = True
        if method is not None:
            result = method(node)
            descend = result is not False
        generic = getattr(self, "visit_node", None)
        if generic is not None:
            result = generic(node)
            descend = descend and result is not False
        if descend:
            for child in node.children():
                self.traverse(child)
