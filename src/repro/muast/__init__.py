"""μAST: the simplified AST API layer mutators are written against.

The paper encapsulates Clang AST APIs into a small set of readable query,
rewriting, semantic-checking, and helper APIs (Figure 6) so that an LLM can
synthesize mutators.  This package is the Python port of that API surface:
:class:`Mutator` is the parent class of every synthesized mutator, and
:class:`ASTVisitor` provides ``visit_<NodeKind>`` traversal callbacks.
"""

from repro.muast.visitor import ASTVisitor
from repro.muast.mutator import (
    ASTContext,
    MutatorCrash,
    MutatorHang,
    Mutator,
    apply_mutator,
    context_for_entry,
)
from repro.muast.registry import (
    MutatorInfo,
    MutatorRegistry,
    global_registry,
    register_mutator,
)

__all__ = [
    "ASTVisitor",
    "ASTContext",
    "Mutator",
    "MutatorCrash",
    "MutatorHang",
    "apply_mutator",
    "context_for_entry",
    "MutatorInfo",
    "MutatorRegistry",
    "global_registry",
    "register_mutator",
]
