"""The fabric supervisor: leases cells to a worker fleet and survives it.

Where :func:`repro.fuzzing.parallel.run_cells_resilient` starts one
process per cell and can only notice trouble via a per-cell wall-clock
timeout, the supervisor runs a *fleet* of long-lived workers against a
lease-based :class:`~repro.fabric.lease.WorkQueue`:

* a worker that stops heartbeating (process death, SIGSTOP, a wedged
  interpreter) is detected within ``heartbeat_timeout`` seconds, killed if
  still present, and its lease is reclaimed and re-dispatched to a
  surviving worker — work-stealing, so a shrinking fleet still drains the
  grid;
* a cell that *kills* ``poison_threshold`` distinct workers is quarantined
  as poison — a recorded :class:`CellOutcome` failure — instead of eating
  the fleet forever (the mutator circuit breaker's idea, applied to
  cells);
* every transition is journalled through the
  :class:`~repro.resilience.checkpoint.CheckpointStore`, so a supervisor
  killed mid-grid restarts with finished cells, kill attributions, and
  poison verdicts intact;
* the same transitions stream as schema-v1 ``fabric`` telemetry events
  next to the resilient runner's ``cell`` lifecycle events in
  ``grid.jsonl``.

Determinism: a cell's result is a pure function of its
:class:`~repro.fuzzing.parallel.CellSpec` (the CRC32 per-cell seed
scheme), so *which* worker runs it, how many workers died first, and how
often it was re-dispatched are all invisible in the results — the fabric
under chaos is bit-identical to a serial :func:`run_cells` of the same
specs.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass

from repro.fabric.journal import FabricJournal
from repro.fabric.lease import Lease, WorkQueue
from repro.fabric.worker import worker_main
from repro.fuzzing.parallel import (
    _POLL_SECONDS,
    CellOutcome,
    CellSpec,
    _outcome_from_checkpoint,
    _run_cell_inprocess,
    cell_key,
    ensure_dead,
)
from repro.resilience.checkpoint import CheckpointStore
from repro.resilience.faultinject import ChaosPlan


@dataclass
class _Worker:
    worker_id: int
    proc: object
    conn: object
    idle: bool = False  # becomes True on the worker's "ready"
    lease_id: int | None = None


class Supervisor:
    """Owns the queue, the fleet, the journal, and the grid telemetry."""

    def __init__(
        self,
        specs,
        fleet_size: int = 4,
        *,
        heartbeat_interval: float = 0.25,
        heartbeat_timeout: float = 2.0,
        cell_timeout: float | None = None,
        cell_retries: int = 1,
        poison_threshold: int = 3,
        max_respawns: int | None = None,
        checkpoint_dir=None,
        telemetry_dir=None,
        chaos: ChaosPlan | None = None,
    ) -> None:
        self.specs = list(specs)
        self.fleet_size = max(1, fleet_size)
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.cell_timeout = cell_timeout
        self.cell_retries = cell_retries
        self.max_respawns = max_respawns
        self.chaos = chaos
        self.store = (
            CheckpointStore(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.journal = FabricJournal(self.store)
        self.queue = WorkQueue(
            heartbeat_timeout=heartbeat_timeout,
            poison_threshold=poison_threshold,
            cell_retries=cell_retries,
        )
        self.telemetry_dir = telemetry_dir
        self.gridlog = None
        self.workers: dict[int, _Worker] = {}
        self.outcomes: dict[int, CellOutcome] = {}
        self._next_worker_id = 0
        self._respawns = 0
        self._spawn_failed = False

    # -- telemetry ---------------------------------------------------------

    def _emit(self, name: str, **fields) -> None:
        if self.gridlog is not None:
            self.gridlog.emit("fabric", name, **fields)

    def _emit_cell(self, spec: CellSpec, status: str, **fields) -> None:
        # Mirrors run_cells_resilient's grid stream so downstream tooling
        # (triage report, lifecycle tests) reads both runners uniformly.
        if self.gridlog is not None:
            self.gridlog.emit(
                "cell", cell_key(spec), status=status,
                fuzzer=spec.fuzzer_name,
                compiler=f"{spec.personality}-{spec.version}", **fields,
            )

    # -- outcome plumbing --------------------------------------------------

    def _finish(self, outcome: CellOutcome, index: int) -> None:
        self.outcomes[index] = outcome
        if self.store is not None:
            self.store.save(cell_key(outcome.spec), outcome.to_json())
        self._emit_cell(
            outcome.spec,
            "ok" if outcome.ok else "failed",
            attempts=outcome.attempts,
            error_type=outcome.error_type,
        )

    def _poison(self, lease: Lease, killers: list[str]) -> None:
        self.queue.mark_poison(lease.index)
        self.journal.record_poison(lease.key)
        self._emit("poison", cell=lease.key, kills=len(killers),
                   workers=sorted(killers))
        self._finish(
            CellOutcome(
                spec=lease.spec,
                ok=False,
                error=(
                    f"poison: cell killed {len(killers)} distinct workers "
                    f"({', '.join(sorted(killers))}); quarantined"
                ),
                error_type="poison",
                attempts=lease.dispatch + 1,
            ),
            lease.index,
        )

    def _worker_killed_holding(self, lease: Lease, token: str, how: str) -> None:
        """A dead/stalled worker held this lease: attribute, then requeue
        or quarantine."""
        killers = self.journal.record_kill(lease.key, token)
        self.queue.record_kill(lease, token)
        self.journal.record("reclaim")
        self._emit("lease", status="reclaim", cell=lease.key, worker=token,
                   reason=how, dispatch=lease.dispatch, kills=len(killers))
        if self.queue.is_poison(lease.index):
            self._poison(lease, killers)
        else:
            self.queue.requeue(lease)

    # -- fleet management --------------------------------------------------

    def _spawn_worker(self) -> bool:
        try:
            import multiprocessing as mp

            ctx = mp.get_context()
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            worker_id = self._next_worker_id
            proc = ctx.Process(
                target=worker_main,
                args=(child_conn, worker_id, self.heartbeat_interval, self.chaos),
                daemon=True,
            )
            proc.start()
            child_conn.close()
        except (ImportError, NotImplementedError, OSError, PermissionError,
                pickle.PicklingError, AttributeError, TypeError):
            self._spawn_failed = True
            return False
        self._next_worker_id += 1
        self.workers[worker_id] = _Worker(worker_id, proc, parent_conn)
        self._emit("worker", status="spawn",
                   worker=self.journal.worker_token(worker_id))
        return True

    def _remove_worker(self, worker: _Worker, status: str) -> None:
        ensure_dead(worker.proc)
        try:
            worker.conn.close()
        except OSError:
            pass
        self.workers.pop(worker.worker_id, None)
        self._emit("worker", status=status,
                   worker=self.journal.worker_token(worker.worker_id))

    def _maybe_respawn(self) -> None:
        # Never keep more workers than there is work left to steal.
        target = min(
            self.fleet_size, self.queue.pending_count + self.queue.lease_count
        )
        while (
            len(self.workers) < target
            and not self._spawn_failed
            and (self.max_respawns is None or self._respawns < self.max_respawns)
        ):
            if not self._spawn_worker():
                return
            self._respawns += 1

    # -- message handling --------------------------------------------------

    def _handle_message(self, worker: _Worker, message: tuple) -> None:
        now = time.monotonic()
        kind = message[0]
        token = self.journal.worker_token(worker.worker_id)
        if kind == "ready":
            worker.idle = True
            worker.lease_id = None
        elif kind == "heartbeat":
            if self.queue.renew(message[2], now):
                self.journal.record_renew()
                self._emit("lease", status="renew", lease=message[2],
                           worker=token)
        elif kind == "done":
            lease = self.queue.complete(message[2])
            if lease is not None:  # else: a reclaimed lease's late result
                self.journal.record("complete")
                self._finish(
                    CellOutcome(
                        spec=lease.spec, ok=True, result=message[3],
                        attempts=lease.dispatch + 1,
                    ),
                    lease.index,
                )
        elif kind == "cell-error":
            lease, retried = self.queue.fail(message[2])
            if lease is not None:
                self.journal.record("fail")
                self._emit("lease", status="fail", cell=lease.key,
                           worker=token, error_type=message[4],
                           retried=retried)
                if not retried:
                    self._finish(
                        CellOutcome(
                            spec=lease.spec, ok=False, error=message[3],
                            error_type=message[4], attempts=lease.dispatch + 1,
                        ),
                        lease.index,
                    )

    def _drain_messages(self) -> None:
        for worker in list(self.workers.values()):
            while True:
                try:
                    if not worker.conn.poll(0):
                        break
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    break  # liveness check below turns this into a death
                if isinstance(message, tuple) and message:
                    self._handle_message(worker, message)

    # -- failure detection -------------------------------------------------

    def _reap_dead_and_stalled(self) -> None:
        now = time.monotonic()
        # 1. Hard deaths: the process itself is gone.
        for worker in list(self.workers.values()):
            if not worker.proc.is_alive():
                token = self.journal.worker_token(worker.worker_id)
                for lease in self.queue.reclaim_worker(worker.worker_id):
                    self._worker_killed_holding(lease, token, "worker-death")
                self._remove_worker(worker, "death")
        # 2. Missed heartbeats: the lease expired while its worker still
        #    looks alive (stalled heartbeat thread, frozen process).
        for lease in self.queue.reclaim_expired(now):
            self._kill_stalled(lease, "heartbeat-missed")
        # 3. Hung cells: heartbeats keep arriving but the cell has been
        #    running past its wall-clock budget.
        if self.cell_timeout is not None:
            for lease in self.queue.reclaim_overrunning(now, self.cell_timeout):
                self._kill_stalled(lease, "cell-timeout")

    def _kill_stalled(self, lease: Lease, how: str) -> None:
        worker = self.workers.get(lease.worker_id)
        token = self.journal.worker_token(lease.worker_id)
        if worker is not None:
            self._remove_worker(worker, "reaped")
        self._worker_killed_holding(lease, token, how)

    # -- dispatch ----------------------------------------------------------

    def _assign_work(self) -> None:
        now = time.monotonic()
        for worker in list(self.workers.values()):
            if not worker.idle or self.queue.pending_count == 0:
                continue
            lease = self.queue.acquire(worker.worker_id, now)
            if lease is None:
                break
            try:
                worker.conn.send(
                    ("lease", lease.lease_id, lease.spec, lease.dispatch)
                )
            except (pickle.PicklingError, AttributeError, TypeError):
                # Unpicklable spec (e.g. a registry of locally-defined
                # mutators): this cell can never cross a process boundary —
                # run it in-process, deterministically identical.
                self.queue.complete(lease.lease_id)
                self._finish(
                    _run_cell_inprocess(lease.spec, self.cell_retries),
                    lease.index,
                )
                continue
            except OSError:
                # The pipe died under us; the liveness pass will reap the
                # worker.  The cell never started, so its dispatch count
                # (and fault keying) must not advance.
                self.queue.complete(lease.lease_id)
                self.queue.add(lease.index, lease.spec, lease.dispatch)
                continue
            worker.idle = False
            worker.lease_id = lease.lease_id
            self.journal.record("grant")
            self._emit(
                "lease", status="grant", cell=lease.key,
                worker=self.journal.worker_token(worker.worker_id),
                dispatch=lease.dispatch,
            )

    def _drain_inprocess(self) -> None:
        """Last resort when no worker can exist: never lose a cell."""
        while True:
            cell = self.queue.pop_pending()
            if cell is None:
                return
            fault = cell.spec.fault
            if fault is not None and fault.kind in ("exit", "hang"):
                # Firing these in-process would take the supervisor down —
                # the very thing the fabric exists to survive.
                self._finish(
                    CellOutcome(
                        spec=cell.spec, ok=False,
                        error="no workers left and the cell is unsafe to "
                              "run in-process",
                        error_type="no-workers",
                        attempts=cell.dispatch + 1,
                    ),
                    cell.index,
                )
                continue
            self._finish(
                _run_cell_inprocess(cell.spec, self.cell_retries), cell.index
            )

    # -- the run loop ------------------------------------------------------

    def run(self) -> list[CellOutcome]:
        if self.telemetry_dir is not None:
            from pathlib import Path

            from repro.telemetry import TelemetrySession

            self.gridlog = TelemetrySession.to_jsonl(
                Path(self.telemetry_dir) / "grid.jsonl"
            )
        try:
            self._emit("grid", status="start", cells=len(self.specs),
                       fleet=self.fleet_size, run=self.journal.runs)
            self._intake()
            if not self.queue.drained:
                for _ in range(min(self.fleet_size, self.queue.pending_count)):
                    self._spawn_worker()
                while not self.queue.drained:
                    self._drain_messages()
                    self._reap_dead_and_stalled()
                    self._maybe_respawn()
                    if not self.workers:
                        self._drain_inprocess()
                        continue
                    self._assign_work()
                    time.sleep(_POLL_SECONDS)
            self._emit("grid", status="end",
                       completed=sum(o.ok for o in self.outcomes.values()),
                       failed=sum(not o.ok for o in self.outcomes.values()))
            return [self.outcomes[index] for index in range(len(self.specs))]
        finally:
            self._shutdown()

    def _intake(self) -> None:
        """Load checkpoints/journal; queue only the genuinely unfinished."""
        for index, spec in enumerate(self.specs):
            key = cell_key(spec)
            payload = self.store.load(key) if self.store is not None else None
            if payload is not None and payload.get("ok") and "result" in payload:
                self.outcomes[index] = _outcome_from_checkpoint(spec, payload)
                self._emit_cell(spec, "checkpoint-skip")
                continue
            if self.journal.is_poisoned(key):
                # A poison verdict survives restarts: never re-dispatch.
                self.outcomes[index] = CellOutcome(
                    spec=spec, ok=False,
                    error=(payload or {}).get(
                        "error", "poison (quarantined in a previous run)"
                    ),
                    error_type="poison",
                    attempts=int((payload or {}).get("attempts", 1)),
                    from_checkpoint=True,
                )
                self._emit_cell(spec, "poison-skip")
                continue
            self.queue.add(index, spec)
            self.queue.seed_kills(index, self.journal.kills_for(key))

    def _shutdown(self) -> None:
        for worker in list(self.workers.values()):
            try:
                worker.conn.send(("stop",))
            except (OSError, ValueError):
                pass
        for worker in list(self.workers.values()):
            worker.proc.join(1)
            ensure_dead(worker.proc)
            try:
                worker.conn.close()
            except OSError:
                pass
        self.workers.clear()
        if self.gridlog is not None:
            self.gridlog.close()
            self.gridlog = None


def run_cells_fabric(
    specs,
    fleet_size: int = 4,
    *,
    heartbeat_interval: float = 0.25,
    heartbeat_timeout: float = 2.0,
    cell_timeout: float | None = None,
    cell_retries: int = 1,
    poison_threshold: int = 3,
    max_respawns: int | None = None,
    checkpoint_dir=None,
    telemetry_dir=None,
    chaos: ChaosPlan | None = None,
) -> list[CellOutcome]:
    """Drain ``specs`` through a supervised worker fleet; one outcome per
    cell, in spec order, no matter what happens to the fleet.

    See :class:`Supervisor` for the protocol.  ``heartbeat_timeout`` is how
    long a silent worker keeps its lease; ``cell_timeout`` (optional) is
    the wall-clock hang budget per cell; ``poison_threshold`` distinct
    worker deaths quarantine a cell; ``max_respawns=None`` means the fleet
    is repaired indefinitely (termination still holds: every chaos/poison
    death either progresses a cell toward quarantine or fires at most once
    per worker).
    """
    return Supervisor(
        specs,
        fleet_size,
        heartbeat_interval=heartbeat_interval,
        heartbeat_timeout=heartbeat_timeout,
        cell_timeout=cell_timeout,
        cell_retries=cell_retries,
        poison_threshold=poison_threshold,
        max_respawns=max_respawns,
        checkpoint_dir=checkpoint_dir,
        telemetry_dir=telemetry_dir,
        chaos=chaos,
    ).run()
