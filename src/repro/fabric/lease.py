"""The lease-based work queue at the heart of the campaign fabric.

A :class:`WorkQueue` hands out *leases* over campaign cells: a lease names
one cell, the worker holding it, and a deadline that the worker must keep
pushing forward by heartbeating.  The queue is the fabric's systemic
memory — it tracks how many times each cell has been dispatched, which
distinct workers died while holding it, and which cells have been
quarantined as poison — but it is deliberately passive: every method takes
an explicit ``now`` and the queue never reads the wall clock, spawns a
process, or sleeps.  That keeps the whole lease lifecycle unit-testable
with a fake clock and leaves scheduling policy to the supervisor.

Lease lifecycle (one cell may cycle through it many times)::

    pending ──acquire──▶ leased ──complete──▶ done (CellOutcome ok)
       ▲                   │
       │                   ├─fail (cell raised, retries left)──▶ pending
       │                   ├─fail (retries exhausted)──▶ done (failed)
       │                   └─reclaim (worker died / heartbeat missed)
       │                         │
       └──────requeue────────────┤ (kill recorded against the cell)
                                 └─poison (≥ threshold distinct workers
                                   killed) ──▶ done (quarantined)
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.fuzzing.parallel import CellSpec, cell_key


@dataclass
class Lease:
    """One worker's claim on one cell, valid until ``deadline``."""

    lease_id: int
    index: int
    spec: CellSpec
    worker_id: int
    granted_at: float
    deadline: float
    #: How many times this cell has been dispatched before this lease
    #: (0-based; becomes the spec's ``attempt`` for fault keying).
    dispatch: int = 0

    @property
    def key(self) -> str:
        return cell_key(self.spec)


@dataclass
class _PendingCell:
    index: int
    spec: CellSpec
    dispatch: int = 0


@dataclass
class WorkQueue:
    """Leases cells to workers; remembers kills, errors, and poison.

    ``heartbeat_timeout`` is the lease TTL: a renewal (heartbeat) pushes
    the deadline to ``now + heartbeat_timeout``, and a lease whose
    deadline passes is considered held by a dead or stalled worker.
    ``poison_threshold`` is the number of *distinct* workers that must die
    while holding a cell before the cell is quarantined as poison;
    ``cell_retries`` bounds retries of cells that raise (the worker
    survives those, so they are counted separately from kills).
    """

    heartbeat_timeout: float = 2.0
    poison_threshold: int = 3
    cell_retries: int = 1

    _pending: deque = field(default_factory=deque, repr=False)
    _leases: dict = field(default_factory=dict, repr=False)
    _next_lease_id: int = 0
    #: cell index → set of worker tokens that died while holding it.
    _kills: dict = field(default_factory=dict, repr=False)
    #: cell index → count of in-worker exceptions (worker survived).
    _errors: dict = field(default_factory=dict, repr=False)
    _poisoned: set = field(default_factory=set, repr=False)

    # -- intake ------------------------------------------------------------

    def add(self, index: int, spec: CellSpec, dispatch: int = 0) -> None:
        self._pending.append(_PendingCell(index, spec, dispatch))

    def seed_kills(self, index: int, worker_tokens) -> None:
        """Restore a cell's kill attribution (journal replay on resume)."""
        self._kills.setdefault(index, set()).update(worker_tokens)

    # -- the lease state machine ------------------------------------------

    def acquire(self, worker_id: int, now: float) -> Lease | None:
        """Grant the next pending cell to ``worker_id``, or None if empty."""
        if not self._pending:
            return None
        cell = self._pending.popleft()
        lease = Lease(
            lease_id=self._next_lease_id,
            index=cell.index,
            spec=cell.spec,
            worker_id=worker_id,
            granted_at=now,
            deadline=now + self.heartbeat_timeout,
            dispatch=cell.dispatch,
        )
        self._next_lease_id += 1
        self._leases[lease.lease_id] = lease
        return lease

    def renew(self, lease_id: int, now: float) -> bool:
        """Heartbeat: push the lease deadline forward.  False if unknown
        (already reclaimed — the worker is beating on a lost lease)."""
        lease = self._leases.get(lease_id)
        if lease is None:
            return False
        lease.deadline = now + self.heartbeat_timeout
        return True

    def complete(self, lease_id: int) -> Lease | None:
        """The cell finished; retire the lease (None if already reclaimed)."""
        return self._leases.pop(lease_id, None)

    def fail(self, lease_id: int) -> tuple[Lease | None, bool]:
        """The cell raised inside a surviving worker.

        Returns ``(lease, retried)``: when the cell's error budget is not
        exhausted it is requeued (``retried=True``); otherwise the caller
        records a failure outcome.
        """
        lease = self._leases.pop(lease_id, None)
        if lease is None:
            return None, False
        errors = self._errors.get(lease.index, 0) + 1
        self._errors[lease.index] = errors
        if errors <= self.cell_retries:
            self.add(lease.index, lease.spec, lease.dispatch + 1)
            return lease, True
        return lease, False

    def reclaim_worker(self, worker_id: int) -> list[Lease]:
        """Strip every lease held by a (dead) worker; does not requeue."""
        claimed = [l for l in self._leases.values() if l.worker_id == worker_id]
        for lease in claimed:
            del self._leases[lease.lease_id]
        return claimed

    def reclaim_expired(self, now: float) -> list[Lease]:
        """Strip every lease whose deadline passed (missed heartbeats)."""
        expired = [l for l in self._leases.values() if now > l.deadline]
        for lease in expired:
            del self._leases[lease.lease_id]
        return expired

    def reclaim_overrunning(self, now: float, cell_budget: float) -> list[Lease]:
        """Strip leases whose cell has run longer than ``cell_budget``.

        Heartbeats prove the *process* is alive, not that the cell makes
        progress — a hung cell beats forever.  The wall-clock budget since
        grant is the hang detector.
        """
        over = [
            l for l in self._leases.values()
            if now - l.granted_at > cell_budget
        ]
        for lease in over:
            del self._leases[lease.lease_id]
        return over

    # -- poison accounting -------------------------------------------------

    def record_kill(self, lease: Lease, worker_token: str) -> int:
        """Attribute a worker death to the cell it held; distinct count."""
        kills = self._kills.setdefault(lease.index, set())
        kills.add(worker_token)
        return len(kills)

    def kill_count(self, index: int) -> int:
        return len(self._kills.get(index, ()))

    def is_poison(self, index: int) -> bool:
        return len(self._kills.get(index, ())) >= self.poison_threshold

    def mark_poison(self, index: int) -> None:
        self._poisoned.add(index)

    @property
    def poisoned(self) -> frozenset:
        return frozenset(self._poisoned)

    # -- requeue / introspection ------------------------------------------

    def requeue(self, lease: Lease) -> None:
        """Put a reclaimed lease's cell back up for grabs (work-stealing)."""
        self.add(lease.index, lease.spec, lease.dispatch + 1)

    def pop_pending(self) -> "_PendingCell | None":
        """Take one pending cell out of the queue without leasing it
        (the no-workers-left fallback executes it in-process)."""
        return self._pending.popleft() if self._pending else None

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def lease_count(self) -> int:
        return len(self._leases)

    @property
    def drained(self) -> bool:
        return not self._pending and not self._leases
