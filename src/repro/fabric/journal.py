"""Durable fabric state: lease/heartbeat/reclaim/poison transitions.

The supervisor journals every queue transition through the same
:class:`~repro.resilience.checkpoint.CheckpointStore` that persists
finished cells, under one reserved key.  The journal is a *state*
snapshot, not an append-only log: each transition folds into a small dict
(kill attributions per cell, poisoned cells, per-transition counters) that
is atomically rewritten, so a supervisor killed at any instant restarts
from a consistent view — finished cells come back from their own
checkpoints, kill counts and poison verdicts come back from the journal,
and only genuinely unfinished cells are re-dispatched.

Worker identities are prefixed with a per-supervisor *run* number
(``run3:w1``), because worker ids restart at zero in every supervisor
incarnation; without the prefix, a poison cell that killed worker 1 in two
different runs would count one distinct killer instead of two.
"""

from __future__ import annotations

from repro.resilience.checkpoint import CheckpointStore

#: The checkpoint key the journal lives under (never a valid cell key —
#: cell keys always carry a sha1 suffix).
JOURNAL_KEY = "fabric-journal"

#: Transition kinds the journal counts (heartbeats are folded into the
#: ``renew`` counter rather than stored individually).
TRANSITIONS = ("grant", "renew", "reclaim", "kill", "poison", "complete", "fail")


class FabricJournal:
    """Folds queue transitions into one durable checkpoint record."""

    def __init__(self, store: CheckpointStore | None) -> None:
        self.store = store
        payload = store.load(JOURNAL_KEY) if store is not None else None
        if payload is None:
            payload = {"runs": 0, "kills": {}, "poisoned": [], "counts": {}}
        self.runs = int(payload.get("runs", 0)) + 1
        #: cell key → sorted list of worker tokens that died holding it.
        self.kills: dict[str, list[str]] = {
            key: list(tokens) for key, tokens in payload.get("kills", {}).items()
        }
        self.poisoned: set[str] = set(payload.get("poisoned", ()))
        self.counts: dict[str, int] = {
            kind: int(payload.get("counts", {}).get(kind, 0))
            for kind in TRANSITIONS
        }
        self._persist()  # record the new run number immediately

    # -- identity ----------------------------------------------------------

    def worker_token(self, worker_id: int) -> str:
        """A worker identity unique across supervisor restarts."""
        return f"run{self.runs}:w{worker_id}"

    # -- transitions -------------------------------------------------------

    def record(self, kind: str, *, persist: bool = True) -> None:
        if kind not in TRANSITIONS:
            raise ValueError(f"unknown transition {kind!r}")
        self.counts[kind] += 1
        if persist:
            self._persist()

    def record_renew(self) -> None:
        # Heartbeats are the high-frequency transition; they bump the
        # counter but only hit disk piggybacked on the next state-changing
        # transition (a lost renew count is harmless on restart).
        self.record("renew", persist=False)

    def record_kill(self, cell_key: str, worker_token: str) -> list[str]:
        """Attribute a worker death to a cell; the distinct-killer list."""
        tokens = self.kills.setdefault(cell_key, [])
        if worker_token not in tokens:
            tokens.append(worker_token)
        self.record("kill")
        return tokens

    def record_poison(self, cell_key: str) -> None:
        self.poisoned.add(cell_key)
        self.record("poison")

    def is_poisoned(self, cell_key: str) -> bool:
        return cell_key in self.poisoned

    def kills_for(self, cell_key: str) -> list[str]:
        return list(self.kills.get(cell_key, ()))

    # -- persistence -------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "runs": self.runs,
            "kills": {key: sorted(tokens) for key, tokens in self.kills.items()},
            "poisoned": sorted(self.poisoned),
            "counts": dict(self.counts),
        }

    def _persist(self) -> None:
        if self.store is not None:
            self.store.save(JOURNAL_KEY, self.to_json())
