"""The fabric worker: a long-lived process that executes leased cells.

A worker is the unit the supervisor supervises.  It connects back over a
duplex pipe, announces itself ready, and then loops: accept a lease, run
the cell via the same :func:`repro.fuzzing.parallel.run_cell` the other
runners use (so results depend only on the :class:`CellSpec`, never on
which worker executed it), report the result, announce ready again.

While a cell runs, a daemon *heartbeat thread* renews the lease every
``heartbeat_interval`` seconds.  Heartbeats prove the process is alive and
scheduling; they intentionally do **not** prove the cell is progressing —
hang detection is the supervisor's wall-clock cell budget.

A :class:`~repro.resilience.faultinject.ChaosPlan` riding along on the
spawn arguments lets CI kill this worker mid-cell (``die``), freeze its
heartbeats (``stall``), or slow it down (``slow``) — deterministically,
keyed on the worker id.

Wire protocol (worker → supervisor), all picklable tuples::

    ("ready",      worker_id)
    ("heartbeat",  worker_id, lease_id)
    ("done",       worker_id, lease_id, CampaignResult)
    ("cell-error", worker_id, lease_id, message, exc_type)

Supervisor → worker::

    ("lease", lease_id, CellSpec, dispatch)
    ("stop",)
"""

from __future__ import annotations

import os
import threading
import time

from repro.resilience.faultinject import ChaosPlan, WorkerFault


class _Heartbeat:
    """Renews the current lease on a timer until stopped (or stalled)."""

    def __init__(self, send, worker_id: int, lease_id: int, interval: float,
                 stalled: bool = False) -> None:
        self._send = send
        self._worker_id = worker_id
        self._lease_id = lease_id
        self._interval = interval
        self._stalled = stalled
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            if self._stalled:
                return  # the chaos fault: silently stop beating
            try:
                self._send(("heartbeat", self._worker_id, self._lease_id))
            except (OSError, ValueError, BrokenPipeError):
                return  # supervisor went away; the worker will notice too

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5)


def _arm_chaos_death(fault: WorkerFault) -> None:
    """Schedule this process's hard death mid-cell (no cleanup, no word)."""

    def _die() -> None:
        time.sleep(fault.after_seconds)
        os._exit(fault.exit_code)

    threading.Thread(target=_die, daemon=True).start()


def worker_main(conn, worker_id: int, heartbeat_interval: float,
                chaos: ChaosPlan | None) -> None:  # pragma: no cover - subprocess
    """The worker process entry point (runs until told to stop)."""
    import dataclasses

    import repro.mutators  # noqa: F401  (populate the worker's registry)
    from repro.fuzzing.parallel import run_cell

    send_lock = threading.Lock()

    def send(payload: tuple) -> None:
        with send_lock:
            conn.send(payload)

    lease_seq = 0
    try:
        send(("ready", worker_id))
        while True:
            message = conn.recv()
            if not isinstance(message, tuple) or message[0] == "stop":
                return
            _, lease_id, spec, dispatch = message
            fault = chaos.decide(worker_id, lease_seq) if chaos else None
            lease_seq += 1
            if fault is not None and fault.kind == "die":
                _arm_chaos_death(fault)
            beat = _Heartbeat(
                send, worker_id, lease_id, heartbeat_interval,
                stalled=fault is not None and fault.kind == "stall",
            )
            beat.start()
            if fault is not None and fault.kind == "slow":
                # Degraded, not dead: keep beating through the slowdown so
                # the lease is renewed rather than reclaimed.
                time.sleep(fault.after_seconds)
            if fault is not None and fault.kind == "stall":
                # A wedged process (GC pause, NFS hang, SIGSTOP): nothing
                # progresses and nothing beats.  The supervisor must notice
                # the missed heartbeats and reap us.
                time.sleep(fault.after_seconds)
            effective = (
                dataclasses.replace(spec, attempt=dispatch) if dispatch else spec
            )
            try:
                result = run_cell(effective)
            except BaseException as exc:  # noqa: BLE001 - report, stay alive
                beat.stop()
                send(("cell-error", worker_id, lease_id, str(exc),
                      type(exc).__name__))
            else:
                beat.stop()
                send(("done", worker_id, lease_id, result))
            send(("ready", worker_id))
    except (EOFError, OSError, KeyboardInterrupt):
        return  # supervisor died or tore the pipe down: just exit
    finally:
        try:
            conn.close()
        except OSError:
            pass
