"""Fabric CI chaos smoke: kill workers mid-cell, prove nothing is lost.

Runs a six-cell campaign grid through the fabric supervisor under a
seeded :class:`~repro.resilience.faultinject.ChaosPlan` that kills ~30% of
the worker fleet mid-cell and wedges one worker's heartbeat, plus one
*poison* cell (an injected hard-exit that kills every worker that leases
it).  Asserts the invariants the fabric exists for:

1. **zero lost cells** — every cell lands as a :class:`CellOutcome`, the
   grid never aborts;
2. **poison quarantine** — the permanently-crashing cell is quarantined
   after killing ``poison_threshold`` distinct workers, exactly once,
   instead of retrying forever;
3. **serial == fabric** — every completed cell's result is bit-identical
   to a serial :func:`run_cells` of the same spec (the CRC32 per-cell
   seed scheme makes results worker-independent);
4. the grid telemetry (``cell`` lifecycle + ``fabric`` lease/reclaim/
   poison events) validates against schema v1, and a resumed supervisor
   serves everything — including the poison verdict — from the journal.

Entry point: ``python -m repro.fabric.smoke``.
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path


def _grid_events(telemetry_dir: Path) -> list[dict]:
    path = telemetry_dir / "grid.jsonl"
    return [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]


def main() -> int:
    import repro.mutators  # noqa: F401  (populate the registry)
    from repro.compiler.driver import GCC_SIM, Compiler
    from repro.fuzzing.campaign import FUZZER_NAMES, Campaign
    from repro.fuzzing.parallel import run_cells
    from repro.fuzzing.seedgen import generate_seeds
    from repro.muast.registry import global_registry
    from repro.resilience.faultinject import CellFault, ChaosPlan
    from repro.telemetry import validate_jsonl

    chaos = ChaosPlan(
        seed=5,          # dooms workers 1, 2, 4 of the first ten;
        kill_fraction=0.34,  # worker 1 stalls instead (stall wins)
        stall_workers=(1,),
        die_after=0.05,
    )
    doomed = chaos.doomed_workers(range(4))
    assert doomed, "the chosen seed must kill at least one initial worker"

    with tempfile.TemporaryDirectory() as tmp:
        telemetry_dir = Path(tmp) / "telemetry"
        checkpoint_dir = Path(tmp) / "checkpoints"
        campaign = Campaign(
            compilers=[Compiler(*GCC_SIM)],
            seeds=generate_seeds(8),
            registry=global_registry,
            steps=12,
            telemetry_dir=str(telemetry_dir),
        )

        # The ground truth: the same six specs, serially, no faults.
        serial = run_cells(
            Campaign(
                compilers=[Compiler(*GCC_SIM)],
                seeds=generate_seeds(8),
                registry=global_registry,
                steps=12,
            ).cell_specs(FUZZER_NAMES)
        )

        outcomes = campaign.run_fabric(
            FUZZER_NAMES,
            fleet_size=4,
            heartbeat_interval=0.05,
            heartbeat_timeout=1.0,
            poison_threshold=3,
            checkpoint_dir=str(checkpoint_dir),
            faults={"GrayC": CellFault(kind="exit", attempts=None)},
            chaos=chaos,
        )

        # 1. Zero lost cells: one outcome per spec, in spec order.
        assert len(outcomes) == len(FUZZER_NAMES), outcomes
        names = [o.spec.fuzzer_name for o in outcomes]
        assert names == list(FUZZER_NAMES), names

        # 2. Poison quarantine: the killer cell is a recorded failure...
        poison = [o for o in outcomes if o.error_type == "poison"]
        assert len(poison) == 1 and poison[0].spec.fuzzer_name == "GrayC", (
            outcomes
        )
        assert poison[0].failed and poison[0].result is None
        # ...and everything else completed despite the fleet churn.
        ok = [o for o in outcomes if o.ok]
        assert len(ok) == len(FUZZER_NAMES) - 1, outcomes

        # 3. Bit-identical to the serial run, whatever workers died.
        for expect, got in zip(serial, outcomes):
            if got.ok:
                assert got.result is not None
                assert got.result.to_json() == expect.to_json(), (
                    f"fabric result diverged for {got.spec.fuzzer_name}"
                )
        print(
            f"chaos: {len(ok)} cells bit-identical to serial, "
            f"poison quarantined after "
            f"{poison[0].attempts} worker kills"
        )

        # 4. Telemetry: schema-valid, poison fired exactly once, and both
        #    failure detectors actually triggered under this plan.
        assert validate_jsonl(telemetry_dir / "grid.jsonl") > 0
        events = _grid_events(telemetry_dir)
        poison_events = [e for e in events if e["kind"] == "fabric"
                         and e["name"] == "poison"]
        assert len(poison_events) == 1, poison_events
        reasons = {
            e["fields"].get("reason")
            for e in events
            if e["kind"] == "fabric" and e["name"] == "lease"
            and e["fields"].get("status") == "reclaim"
        }
        assert "worker-death" in reasons, reasons
        assert "heartbeat-missed" in reasons, reasons
        cell_statuses = [
            e["fields"]["status"] for e in events if e["kind"] == "cell"
        ]
        assert cell_statuses.count("ok") == len(ok)
        assert cell_statuses.count("failed") == 1
        print(f"telemetry: {len(events)} schema-valid grid events, "
              f"reclaim reasons {sorted(reasons)}")

        # 5. Resume: a restarted supervisor replays everything from the
        #    journal + checkpoints — including the poison verdict — and
        #    never spawns a worker.
        resumed = campaign.run_fabric(
            FUZZER_NAMES,
            fleet_size=4,
            heartbeat_interval=0.05,
            heartbeat_timeout=1.0,
            poison_threshold=3,
            checkpoint_dir=str(checkpoint_dir),
            faults={"GrayC": CellFault(kind="exit", attempts=None)},
            chaos=chaos,
        )
        assert all(o.from_checkpoint for o in resumed), resumed
        assert resumed[names.index("GrayC")].error_type == "poison"
        events = _grid_events(telemetry_dir)
        assert not any(
            e["kind"] == "fabric" and e["name"] == "lease"
            and e["fields"].get("status") == "grant"
            for e in events
        ), "a resumed grid must not re-dispatch anything"
        print("resume: full grid served from journal + checkpoints")

    print("fabric chaos smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
