"""The fault-tolerant campaign fabric: leases, supervision, chaos.

Long-running LLM-mutator campaigns (Mut4All- and FunFuzz-scale fleets,
hours to days) make worker loss, hangs, and poison inputs the steady
state, not the exception.  This package turns the static
``run_cells_resilient`` fan-out into a supervised fabric:

* :mod:`repro.fabric.lease` — the lease-based :class:`WorkQueue` (grant /
  renew / reclaim / poison state machine, fake-clock testable);
* :mod:`repro.fabric.journal` — durable transition state through
  :class:`~repro.resilience.checkpoint.CheckpointStore` so a supervisor
  restart resumes mid-grid;
* :mod:`repro.fabric.worker` — the long-lived worker process with its
  heartbeat thread and chaos hooks;
* :mod:`repro.fabric.supervisor` — dead/stalled-worker detection, lease
  reclamation and work-stealing re-dispatch, poison-cell quarantine,
  schema-v1 ``fabric`` telemetry, and :func:`run_cells_fabric`;
* :mod:`repro.fabric.smoke` — the chaos harness CI runs: under seeded
  worker deaths and a heartbeat stall, every cell must land, poison must
  quarantine exactly the injected killer cell, and completed results must
  be bit-identical to the serial run.

Worker-level fault *plans* (:class:`~repro.resilience.faultinject.ChaosPlan`)
live in :mod:`repro.resilience.faultinject` beside the cell-level faults
they extend.
"""

from repro.fabric.journal import JOURNAL_KEY, FabricJournal
from repro.fabric.lease import Lease, WorkQueue
from repro.fabric.supervisor import Supervisor, run_cells_fabric

__all__ = [
    "FabricJournal",
    "JOURNAL_KEY",
    "Lease",
    "Supervisor",
    "WorkQueue",
    "run_cells_fabric",
]
