"""Resilience CI smoke: inject a worker crash, assert the grid survives.

Runs a six-cell campaign grid (the six evaluated fuzzers on the gcc
personality) with a permanently crashing worker injected into one cell,
and asserts the acceptance contract of the resilience layer: five cells
succeed, the broken cell lands as a recorded :class:`CellOutcome` failure,
and the grid is never aborted or silently serialized.  Also exercises the
retry path (a first-attempt-only crash that the per-cell retry absorbs)
and checkpoint/resume.  Exit code 0 = contract holds.

Entry points: ``resilience-smoke`` (installed script) or
``python -m repro.resilience.smoke``.
"""

from __future__ import annotations

import sys
import tempfile


def main() -> int:
    import repro.mutators  # noqa: F401  (populate the registry)
    from repro.compiler.driver import Compiler, GCC_SIM
    from repro.fuzzing.campaign import FUZZER_NAMES, Campaign
    from repro.fuzzing.seedgen import generate_seeds
    from repro.muast.registry import global_registry
    from repro.resilience.faultinject import CellFault

    campaign = Campaign(
        compilers=[Compiler(*GCC_SIM)],
        seeds=generate_seeds(8),
        registry=global_registry,
        steps=12,
    )

    # 1. A permanently crashing worker: 5 successes + 1 recorded failure.
    outcomes = campaign.run_resilient(
        FUZZER_NAMES,
        parallelism=3,
        cell_retries=1,
        faults={"GrayC": CellFault(kind="exit", attempts=None)},
    )
    ok = [o for o in outcomes if o.ok]
    failed = [o for o in outcomes if o.failed]
    assert len(outcomes) == 6, f"expected 6 outcomes, got {len(outcomes)}"
    assert len(ok) == 5, f"expected 5 successes, got {len(ok)}"
    assert len(failed) == 1 and failed[0].spec.fuzzer_name == "GrayC", failed
    assert failed[0].error_type == "worker-crash", failed[0]
    assert failed[0].attempts == 2, failed[0]
    print(
        "worker-crash isolation: 5 ok + 1 recorded failure "
        f"({failed[0].error_type}: {failed[0].error})"
    )

    # 2. A transient first-attempt crash: the per-cell retry absorbs it and
    #    the retried cell equals the clean serial run (same CellSpec seed).
    clean = campaign.run(("uCFuzz.s", "Csmith"), parallelism=1)
    retried = campaign.run_resilient(
        ("uCFuzz.s", "Csmith"),
        parallelism=2,
        cell_retries=1,
        faults={"uCFuzz.s": CellFault(kind="exit", attempts=(0,))},
    )
    assert all(o.ok for o in retried), retried
    assert retried[0].attempts == 2 and retried[1].attempts == 1
    for expect, got in zip(clean, retried):
        assert got.result is not None
        assert got.result.coverage_trend == expect.coverage_trend
        assert got.result.crashes.signatures() == expect.crashes.signatures()
    print("worker-crash retry: retried cell identical to the clean run")

    # 3. Checkpoint/resume: a second run reruns nothing.
    with tempfile.TemporaryDirectory() as ckpt:
        first = campaign.run_resilient(
            ("uCFuzz.u", "YARPGen"), parallelism=2, checkpoint_dir=ckpt
        )
        resumed = campaign.run_resilient(
            ("uCFuzz.u", "YARPGen"), parallelism=2, checkpoint_dir=ckpt
        )
        assert all(o.ok for o in first)
        assert all(o.from_checkpoint for o in resumed), resumed
        for a, b in zip(first, resumed):
            assert a.result.coverage_trend == b.result.coverage_trend
    print("checkpoint/resume: resumed run served entirely from checkpoints")
    print("resilience smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
