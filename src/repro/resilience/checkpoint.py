"""An atomic JSON-per-key checkpoint store.

Campaigns persist each finished cell as one ``<key>.json`` file; a restart
loads the files that exist and reruns only the missing cells.  Writes go
through a temp file + ``os.replace`` so a kill mid-write can never leave a
truncated checkpoint — a corrupt or unreadable file is treated as absent.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path

_SAFE_KEY = re.compile(r"[^A-Za-z0-9._+-]")


def sanitize_key(key: str) -> str:
    """A filesystem-safe version of ``key`` (used as the file stem)."""
    return _SAFE_KEY.sub("_", key)


class CheckpointStore:
    """Maps string keys to JSON payloads under one directory."""

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        return self.directory / f"{sanitize_key(key)}.json"

    def load(self, key: str) -> dict | None:
        """The stored payload, or None if absent/corrupt."""
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def save(self, key: str, payload: dict) -> Path:
        """Atomically persist ``payload`` under ``key``."""
        path = self.path_for(key)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True) + "\n")
        os.replace(tmp, path)
        return path

    def keys(self) -> list[str]:
        return sorted(p.stem for p in self.directory.glob("*.json"))

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        return len(self.keys())
