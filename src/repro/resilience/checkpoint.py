"""An atomic JSON-per-key checkpoint store.

Campaigns persist each finished cell as one ``<key>.json`` file; a restart
loads the files that exist and reruns only the missing cells.  Writes go
through a temp file + ``os.replace`` so a kill mid-write can never leave a
truncated checkpoint — a corrupt or unreadable file is treated as absent.

Keys are sanitized into filesystem-safe stems, which is lossy: ``a/b`` and
``a_b`` share the stem ``a_b``.  The original key is therefore embedded in
the payload (under ``_KEY_FIELD``) on save and checked on load, so a
collision reads as "absent" for the key that lost the file rather than
silently serving another key's payload.  Orphaned ``*.json.tmp`` files —
left by a kill between ``write_text`` and ``os.replace`` — are swept when
the store is opened.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path

_SAFE_KEY = re.compile(r"[^A-Za-z0-9._+-]")

#: Reserved payload field carrying the unsanitized key (collision guard).
_KEY_FIELD = "__key__"


def sanitize_key(key: str) -> str:
    """A filesystem-safe version of ``key`` (used as the file stem)."""
    return _SAFE_KEY.sub("_", key)


class CheckpointStore:
    """Maps string keys to JSON payloads under one directory."""

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._sweep_orphans()

    def _sweep_orphans(self) -> None:
        """Remove temp files a killed writer left behind (never valid)."""
        for tmp in self.directory.glob("*.json.tmp"):
            try:
                tmp.unlink()
            except OSError:
                pass  # a concurrent writer may have replaced it already

    def path_for(self, key: str) -> Path:
        return self.directory / f"{sanitize_key(key)}.json"

    def load(self, key: str) -> dict | None:
        """The stored payload, or None if absent/corrupt/another key's file.

        A payload recorded under a key whose sanitized stem collides with
        this one is *not* served: the embedded original key must match.
        (Payloads written before the key field existed carry no embedded
        key and are accepted as-is.)
        """
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        stored_key = payload.pop(_KEY_FIELD, key)
        return payload if stored_key == key else None

    def save(self, key: str, payload: dict) -> Path:
        """Atomically persist ``payload`` under ``key``."""
        path = self.path_for(key)
        tmp = path.with_suffix(".json.tmp")
        record = {**payload, _KEY_FIELD: key}
        tmp.write_text(json.dumps(record, sort_keys=True) + "\n")
        os.replace(tmp, path)
        return path

    def keys(self) -> list[str]:
        return sorted(p.stem for p in self.directory.glob("*.json"))

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        return len(self.keys())
