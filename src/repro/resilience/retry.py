"""Deterministic retry with exponential backoff and seeded jitter.

All backoff times are *virtual* seconds — nothing sleeps.  Jitter is drawn
from the caller's :class:`random.Random`, so the same seed always yields
the same retry/backoff schedule; the schedule is part of the deterministic
cost accounting (Tables 2-3 stay honest under retries).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """An exponential-backoff retry budget.

    ``budget`` is the number of *retries* after the first attempt, so a
    policy with ``budget=3`` issues at most four attempts.  The pause
    before retry ``i`` (0-based) is ``base_backoff * multiplier**i``
    capped at ``max_backoff``, scaled by a uniform jitter factor in
    ``[1 - jitter, 1 + jitter]`` drawn from the caller's RNG.
    """

    budget: int = 3
    base_backoff: float = 2.0
    multiplier: float = 2.0
    max_backoff: float = 60.0
    jitter: float = 0.25

    def backoff_seconds(self, attempt: int, rng: random.Random) -> float:
        """The virtual pause before retry number ``attempt`` (0-based)."""
        pause = min(self.base_backoff * self.multiplier**attempt, self.max_backoff)
        if self.jitter:
            pause *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return pause

    def schedule(self, rng: random.Random) -> list[float]:
        """The full backoff schedule the given RNG stream would produce."""
        return [self.backoff_seconds(i, rng) for i in range(self.budget)]


def run_with_retry(
    policy: RetryPolicy | None,
    rng: random.Random,
    attempt_fn: Callable[[], T],
    retryable: tuple[type[BaseException], ...] = (Exception,),
    on_backoff: Callable[[int, float], None] | None = None,
) -> tuple[T, int, float]:
    """Call ``attempt_fn`` under ``policy``; return (value, retries, backoff).

    With ``policy=None`` the call is made exactly once and consumes no RNG
    beyond what ``attempt_fn`` itself draws — callers that opt out of
    retries keep their historical random stream bit-for-bit.  When the
    budget is exhausted the last ``retryable`` exception propagates.
    """
    retries = 0
    backoff_total = 0.0
    while True:
        try:
            return attempt_fn(), retries, backoff_total
        except retryable:
            if policy is None or retries >= policy.budget:
                raise
            pause = policy.backoff_seconds(retries, rng)
            if on_backoff is not None:
                on_backoff(retries, pause)
            backoff_total += pause
            retries += 1
