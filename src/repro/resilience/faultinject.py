"""Picklable fault plans for exercising the resilience layer.

A :class:`CellFault` rides along on a campaign ``CellSpec`` and fires
inside the worker that executes the cell, simulating the three ways a real
fuzzing worker dies: an unhandled exception, a hard process death (as if
the kernel OOM-killed it), and a hang.  Faults are keyed on the *attempt*
number, so a test can make the first attempt fail and the retry succeed —
which is exactly the scenario the per-cell retry exists for.

``kind="exit"`` and ``kind="hang"`` must only be used with process
isolation (``parallelism > 1`` or ``cell_timeout`` set): fired in-process
they would take the caller down, which is the behaviour they simulate.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass


class InjectedCellFault(RuntimeError):
    """The exception a ``kind="raise"`` fault throws inside the worker."""


@dataclass(frozen=True)
class CellFault:
    """A deterministic fault fired by ``run_cell`` before the cell runs.

    ``attempts`` lists the 0-based attempt numbers on which the fault
    fires; ``None`` means every attempt (a permanently broken cell).
    """

    kind: str  # "raise" | "exit" | "hang"
    attempts: tuple[int, ...] | None = (0,)
    hang_seconds: float = 3600.0
    exit_code: int = 23

    def fire(self, attempt: int) -> None:
        if self.attempts is not None and attempt not in self.attempts:
            return
        if self.kind == "raise":
            raise InjectedCellFault(
                f"injected cell fault (attempt {attempt})"
            )
        if self.kind == "exit":
            # A hard worker death: no exception, no cleanup, no message.
            os._exit(self.exit_code)
        if self.kind == "hang":
            time.sleep(self.hang_seconds)
            return
        raise ValueError(f"unknown fault kind {self.kind!r}")
