"""Picklable fault plans for exercising the resilience layer.

A :class:`CellFault` rides along on a campaign ``CellSpec`` and fires
inside the worker that executes the cell, simulating the three ways a real
fuzzing worker dies: an unhandled exception, a hard process death (as if
the kernel OOM-killed it), and a hang.  Faults are keyed on the *attempt*
number, so a test can make the first attempt fail and the retry succeed —
which is exactly the scenario the per-cell retry exists for.

``kind="exit"`` and ``kind="hang"`` must only be used with process
isolation (``parallelism > 1`` or ``cell_timeout`` set): fired in-process
they would take the caller down, which is the behaviour they simulate.

:class:`WorkerFault` and :class:`ChaosPlan` extend the same idea from
cells to *workers* for the fabric layer (:mod:`repro.fabric`): a plan
deterministically decides, per (worker, lease), whether that worker dies
mid-cell, stalls its heartbeat, or slows down.  Decisions are pure
functions of ``(seed, worker_id, lease_seq)`` — no shared RNG state, so
the same plan replays identically regardless of scheduling.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass


class InjectedCellFault(RuntimeError):
    """The exception a ``kind="raise"`` fault throws inside the worker."""


@dataclass(frozen=True)
class CellFault:
    """A deterministic fault fired by ``run_cell`` before the cell runs.

    ``attempts`` lists the 0-based attempt numbers on which the fault
    fires; ``None`` means every attempt (a permanently broken cell).
    """

    kind: str  # "raise" | "exit" | "hang"
    attempts: tuple[int, ...] | None = (0,)
    hang_seconds: float = 3600.0
    exit_code: int = 23

    def fire(self, attempt: int) -> None:
        if self.attempts is not None and attempt not in self.attempts:
            return
        if self.kind == "raise":
            raise InjectedCellFault(
                f"injected cell fault (attempt {attempt})"
            )
        if self.kind == "exit":
            # A hard worker death: no exception, no cleanup, no message.
            os._exit(self.exit_code)
        if self.kind == "hang":
            time.sleep(self.hang_seconds)
            return
        raise ValueError(f"unknown fault kind {self.kind!r}")


# ---------------------------------------------------------------------------
# Worker-level chaos (fabric layer)

#: The worker fault kinds a :class:`ChaosPlan` can inject.
WORKER_FAULT_KINDS = ("die", "stall", "slow")


@dataclass(frozen=True)
class WorkerFault:
    """One worker-level fault, applied while the worker holds a lease.

    ``die``
        The worker hard-exits (``os._exit``) ``after_seconds`` into the
        leased cell — a mid-cell death with no cleanup and no message,
        exactly what an OOM kill or a machine loss looks like.
    ``stall``
        The worker wedges for ``after_seconds`` while holding the lease —
        no heartbeats, no progress (a long GC pause, an NFS hang, a
        SIGSTOP); the supervisor must detect the missed heartbeats and
        reap the worker.
    ``slow``
        The worker sleeps ``after_seconds`` before starting the cell —
        a degraded-but-healthy worker that must keep its lease via
        heartbeat renewal rather than be reaped.
    """

    kind: str  # one of WORKER_FAULT_KINDS
    after_seconds: float = 0.05
    exit_code: int = 41

    def __post_init__(self) -> None:
        if self.kind not in WORKER_FAULT_KINDS:
            raise ValueError(f"unknown worker fault kind {self.kind!r}")


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded, picklable schedule of worker faults for the fabric.

    The plan is consulted by each worker when it accepts a lease:
    :meth:`decide` maps ``(worker_id, lease_seq)`` — the worker's id and
    how many leases it has accepted so far — to an optional
    :class:`WorkerFault`.  The mapping hashes the plan seed with the
    worker id, so it is identical in every process and across reruns
    without any shared state.

    ``kill_fraction`` of workers die mid-way through their *first* leased
    cell (each worker dies at most once; respawned workers get fresh ids
    and roll again, so a fleet under sustained chaos keeps churning).
    ``stall_workers``/``slow_workers`` name worker ids explicitly, firing
    on their first lease — precise single-fault scenarios for tests.
    """

    seed: int = 0
    kill_fraction: float = 0.0
    stall_workers: tuple[int, ...] = ()
    slow_workers: tuple[int, ...] = ()
    die_after: float = 0.05
    slow_for: float = 0.2
    stall_for: float = 3600.0

    def decide(self, worker_id: int, lease_seq: int) -> WorkerFault | None:
        """The fault (if any) this worker suffers on its ``lease_seq``-th lease."""
        if lease_seq != 0:
            return None  # every fault fires on a worker's first lease
        if worker_id in self.stall_workers:
            return WorkerFault("stall", after_seconds=self.stall_for)
        if worker_id in self.slow_workers:
            return WorkerFault("slow", after_seconds=self.slow_for)
        if self.kill_fraction > 0.0:
            # sha1, not crc32: crc is linear, so a seed change would only
            # perturb the draw instead of reshuffling it.
            digest = hashlib.sha1(
                f"chaos\x00{self.seed}\x00{worker_id}".encode()
            ).digest()
            draw = int.from_bytes(digest[:4], "big") / 0xFFFFFFFF
            if draw < self.kill_fraction:
                return WorkerFault("die", after_seconds=self.die_after)
        return None

    def doomed_workers(self, worker_ids) -> list[int]:
        """Which of ``worker_ids`` the plan will kill (for assertions)."""
        return [
            wid for wid in worker_ids
            if (fault := self.decide(wid, 0)) is not None and fault.kind == "die"
        ]
