"""Cross-cutting fault tolerance: retry/backoff, quarantine, checkpoints.

The paper's pipeline loses 24 of 100 unsupervised invocations to API
throttling (§4) and runs 60 parallel fuzzer instances for 24 hours per
cell — at that scale transient faults are the common case, not the
exception.  This package provides the primitives every long-running entry
point shares:

* :mod:`repro.resilience.retry` — a deterministic exponential-backoff
  retry policy on the *virtual* clock (seeded jitter, bounded budget);
* :mod:`repro.resilience.circuit` — a per-mutator circuit breaker that
  quarantines mutators which crash/hang repeatedly;
* :mod:`repro.resilience.checkpoint` — an atomic JSON-per-key store used
  for campaign checkpoint/resume;
* :mod:`repro.resilience.faultinject` — picklable fault plans for
  exercising the above in tests and CI smoke jobs.

Nothing here imports from the higher layers (llm/metamut/fuzzing), so any
of them can depend on it without cycles.
"""

from repro.resilience.checkpoint import CheckpointStore
from repro.resilience.circuit import MutatorQuarantine, QuarantineEvent
from repro.resilience.faultinject import (
    CellFault,
    ChaosPlan,
    InjectedCellFault,
    WorkerFault,
)
from repro.resilience.retry import RetryPolicy, run_with_retry

__all__ = [
    "CheckpointStore",
    "MutatorQuarantine",
    "QuarantineEvent",
    "CellFault",
    "ChaosPlan",
    "InjectedCellFault",
    "WorkerFault",
    "RetryPolicy",
    "run_with_retry",
]
