"""A per-mutator circuit breaker (quarantine).

A generated mutator that crashes or hangs once is noise; one that fails on
every draw burns the fuzzer's per-iteration timeslice for the whole
campaign.  The breaker counts *consecutive* failures per mutator and
quarantines a mutator for the rest of the run once the count reaches the
threshold; any success resets its count.  All state transitions are pure
functions of the observed failure sequence, so quarantine decisions are
deterministic and identical across serial and parallel campaign runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class QuarantineEvent:
    """One mutator crossing the threshold."""

    mutator: str
    failures: int
    reason: str = ""


@dataclass
class MutatorQuarantine:
    """Consecutive-failure circuit breaker over mutator names."""

    threshold: int = 3
    events: list[QuarantineEvent] = field(default_factory=list)
    _consecutive: dict[str, int] = field(default_factory=dict)
    _quarantined: set[str] = field(default_factory=set)

    def allows(self, name: str) -> bool:
        """Whether the mutator may still be scheduled."""
        return name not in self._quarantined

    def record_success(self, name: str) -> None:
        """A clean application resets the consecutive-failure count."""
        self._consecutive.pop(name, None)

    def record_failure(self, name: str, reason: str = "") -> bool:
        """Count one crash/hang; returns True iff this tripped the breaker."""
        if name in self._quarantined:
            return False
        count = self._consecutive.get(name, 0) + 1
        self._consecutive[name] = count
        if count < self.threshold:
            return False
        self._quarantined.add(name)
        self.events.append(QuarantineEvent(name, count, reason))
        return True

    @property
    def quarantined(self) -> set[str]:
        return set(self._quarantined)

    def stats(self) -> dict:
        """Summary for ``StepResult``/``CampaignResult`` stats dicts."""
        return {
            "quarantine_threshold": self.threshold,
            "quarantine_events": len(self.events),
            "quarantined_mutators": sorted(self._quarantined),
        }
