"""A per-mutator circuit breaker (quarantine) with fitness retirement.

A generated mutator that crashes or hangs once is noise; one that fails on
every draw burns the fuzzer's per-iteration timeslice for the whole
campaign.  The breaker counts *consecutive* failures per mutator and
quarantines a mutator for the rest of the run once the count reaches the
threshold; any success resets its count.  Only a *changed* application
counts as a success — a mutator whose non-crashing draws are all no-ops
must not dodge the breaker (the fuzzer enforces this by recording success
after the changed check).

The quarantine also tracks the scheduler's population management
(:mod:`repro.fuzzing.schedule`): :meth:`retire` permanently removes a
chronic low-fitness mutator, fires the ``on_retire`` hook so a MetaMut
invention loop can be flagged to invent a replacement, and surfaces the
retired set in :meth:`stats`.  All state transitions are pure functions of
the observed event sequence, so quarantine and retirement decisions are
deterministic and identical across serial, parallel, and fabric campaign
runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass(frozen=True)
class QuarantineEvent:
    """One mutator crossing the threshold (or being retired)."""

    mutator: str
    failures: int
    reason: str = ""


@dataclass
class MutatorQuarantine:
    """Consecutive-failure circuit breaker over mutator names.

    ``threshold=None`` disables the breaker itself (failures are counted
    but never trip) while keeping the retirement bookkeeping available —
    the scheduler uses that mode when no crash-quarantine was requested.
    """

    threshold: int | None = 3
    events: list[QuarantineEvent] = field(default_factory=list)
    #: One event per retirement, in retirement order.
    retirements: list[QuarantineEvent] = field(default_factory=list)
    #: Called as ``on_retire(name, reason)`` right after a retirement is
    #: recorded — the MetaMut replacement-invention flag.
    on_retire: "Callable[[str, str], None] | None" = None
    _consecutive: dict[str, int] = field(default_factory=dict)
    _quarantined: set[str] = field(default_factory=set)
    _retired: dict[str, str] = field(default_factory=dict)

    def allows(self, name: str) -> bool:
        """Whether the mutator may still be scheduled."""
        return name not in self._quarantined and name not in self._retired

    def record_success(self, name: str) -> None:
        """A clean *changed* application resets the consecutive count."""
        self._consecutive.pop(name, None)

    def record_failure(self, name: str, reason: str = "") -> bool:
        """Count one crash/hang; returns True iff this tripped the breaker."""
        if name in self._quarantined or name in self._retired:
            return False
        count = self._consecutive.get(name, 0) + 1
        self._consecutive[name] = count
        if self.threshold is None or count < self.threshold:
            return False
        self._quarantined.add(name)
        self.events.append(QuarantineEvent(name, count, reason))
        return True

    def retire(self, name: str, reason: str = "low-fitness") -> bool:
        """Permanently retire a mutator; True iff newly retired.

        Retirement is the scheduler's fitness verdict, not a crash verdict:
        it is recorded separately from breaker events and flags the
        ``on_retire`` hook so an invention loop can grow a replacement.
        """
        if name in self._retired:
            return False
        self._retired[name] = reason
        self.retirements.append(
            QuarantineEvent(name, self._consecutive.get(name, 0), reason)
        )
        if self.on_retire is not None:
            self.on_retire(name, reason)
        return True

    @property
    def quarantined(self) -> set[str]:
        return set(self._quarantined)

    @property
    def retired(self) -> set[str]:
        return set(self._retired)

    def stats(self) -> dict:
        """Summary for ``StepResult``/``CampaignResult`` stats dicts."""
        return {
            "quarantine_threshold": self.threshold,
            "quarantine_events": len(self.events),
            "quarantined_mutators": sorted(self._quarantined),
            "retirements": len(self._retired),
            "retired_mutators": sorted(self._retired),
        }
