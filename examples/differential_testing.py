#!/usr/bin/env python3
"""Differential testing with the IR interpreter.

Demonstrates the substrate behind the optimizer's correctness tests: compile
the same program at -O0 and -O3 on both compiler personalities and check all
four executions agree — the oracle real compiler-fuzzing campaigns use for
miscompilation (as opposed to crash) bugs.

Run:  python examples/differential_testing.py [count]
"""

import random
import sys

from repro.compiler import CLANG_SIM, GCC_SIM, Compiler
from repro.compiler.interp import execute
from repro.fuzzing.progen import GenPolicy, ProgramGenerator


def main() -> None:
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 25
    compilers = [Compiler(*GCC_SIM), Compiler(*CLANG_SIM)]
    rng = random.Random(99)
    disagreements = 0
    for i in range(count):
        program = ProgramGenerator(
            random.Random(rng.randrange(1 << 62)), GenPolicy(max_stmts=8)
        ).generate()
        behaviours = set()
        for compiler in compilers:
            for opt in (0, 3):
                result = compiler.compile(program, opt_level=opt)
                if not result.ok:
                    continue
                behaviours.add(execute(result.module, fuel=250_000).observable)
        status = "OK" if len(behaviours) <= 1 else "MISCOMPILATION?!"
        if len(behaviours) > 1:
            disagreements += 1
            print(f"program {i}: {status}")
            print(program)
    print(
        f"\n{count} programs x 2 compilers x (O0, O3): "
        f"{disagreements} behavioural disagreements"
    )
    print("(the seeded bug population contains crashes and hangs only, so "
          "a healthy run reports 0)")


if __name__ == "__main__":
    main()
