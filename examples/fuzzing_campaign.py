#!/usr/bin/env python3
"""A miniature RQ1 campaign: μCFuzz vs the four baseline fuzzers.

Runs each fuzzer for a few hundred steps against the simulated GCC-14 and
prints the Figure-7/8-style comparison: coverage, unique crashes, and
compilable-mutant ratio.

Run:  python examples/fuzzing_campaign.py  [steps]
"""

import random
import sys

from repro.compiler import Compiler, GCC_SIM
from repro.fuzzing.campaign import FUZZER_NAMES, make_fuzzer, run_campaign
from repro.fuzzing.seedgen import generate_seeds
from repro.muast.registry import global_registry


def main() -> None:
    steps = int(sys.argv[1]) if len(sys.argv) > 1 else 120
    compiler = Compiler(*GCC_SIM)
    seeds = generate_seeds(200)
    print(f"target: {compiler.name} at -O2, {len(seeds)} seeds, "
          f"{steps} steps per fuzzer (virtual 24h)\n")

    print(f"{'fuzzer':10s}{'coverage':>10}{'crashes':>9}{'compilable':>12}  modules")
    for name in FUZZER_NAMES:
        fuzzer = make_fuzzer(
            name, compiler, seeds, global_registry, random.Random(2024)
        )
        result = run_campaign(fuzzer, steps=steps)
        modules = {
            k: v for k, v in result.crashes.by_module().items() if v
        }
        print(
            f"{name:10s}{result.final_coverage:>10}{len(result.crashes):>9}"
            f"{100 * result.compilable_ratio:>11.1f}%  {modules or '-'}"
        )

    print(
        "\nExpected shape (paper Fig. 7/8, Tables 4-5): μCFuzz.s wins "
        "coverage and crashes,\nCsmith finds nothing, AFL++ compiles almost "
        "nothing but reaches front-end bugs."
    )


if __name__ == "__main__":
    main()
