#!/usr/bin/env python3
"""§6 extension: MetaMut mutators as mutation-testing operators.

Measures how well a program's own behaviour oracle "kills" mutants produced
by the 118 generated mutators — and shows the asymmetry the paper predicts:
compiler-fuzzing mutators include many identity transformations (never
killable) alongside aggressive semantic changes (killed trivially).

Run:  python examples/mutation_testing.py
"""

import random

from repro.analysis.mutation_testing import mutation_score
from repro.muast.registry import global_registry
import repro.mutators  # noqa: F401

PROGRAM = """\
int scores[8];
int clamp(int v, int lo, int hi) {
  if (v < lo) return lo;
  if (v > hi) return hi;
  return v;
}
int main(void) {
  int i, total = 0;
  for (i = 0; i < 8; i++) {
    scores[i] = clamp(i * 7 - 10, 0, 25);
    total += scores[i];
  }
  printf("%d %d %d\\n", scores[0], scores[7], total);
  return total & 127;
}
"""


def main() -> None:
    score = mutation_score(
        PROGRAM, mutants_per_mutator=2, rng=random.Random(11)
    )
    print(f"mutants:    {len(score.results)}")
    print(f"killed:     {score.killed}")
    print(f"survived:   {score.survived}")
    print(f"invalid:    {score.invalid} (compile-error mutants, discarded)")
    print(f"mutation score: {100 * score.score:.1f}%")

    survivors = sorted({r.mutator for r in score.results if r.status == "survived"})
    killers = sorted({r.mutator for r in score.results if r.status == "killed"})
    print(f"\nsample surviving mutators (semantic no-ops): {survivors[:6]}")
    print(f"sample killed mutators (behaviour changers):  {killers[:6]}")
    print(
        "\nAs §6 predicts, compiler-fuzzing mutators split into equivalence-"
        "preserving\nrewrites (useless for mutation testing) and multi-point "
        "semantic changes\n(killed by even a trivial oracle)."
    )


if __name__ == "__main__":
    main()
