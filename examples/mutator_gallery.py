#!/usr/bin/env python3
"""A gallery of the 118 generated mutators.

Applies every mutator in the library to a feature-rich sample program and
shows a unified diff of one mutation each — the quickest way to see what the
MetaMut-generated search space looks like.

Run:  python examples/mutator_gallery.py            # all 118
      python examples/mutator_gallery.py Ret2V-ish  # filter by substring
"""

import difflib
import random
import sys

from repro.metamut.testgen import tests_for
from repro.muast import apply_mutator
from repro.muast.registry import global_registry


def show_one(name: str) -> bool:
    info = global_registry.get(name)
    for program in tests_for(info.structure, info.description):
        for trial in range(6):
            mutator = info.create(random.Random(trial * 131 + 7))
            outcome = apply_mutator(mutator, program)
            if not outcome.changed or outcome.mutant_text == program:
                continue
            diff = difflib.unified_diff(
                program.splitlines(keepends=True),
                outcome.mutant_text.splitlines(keepends=True),
                n=0, lineterm="\n",
            )
            body = "".join(line for line in diff if not line.startswith(("---", "+++", "@@")))
            print(f"--- {info.name} [{info.category}, {info.origin}"
                  f"{', creative' if info.creative else ''}]")
            print(f"    {info.description[:100]}")
            print("".join(f"    {line}" for line in body.splitlines(True)[:8]))
            return True
    print(f"--- {name}: produced no mutation on the gallery programs")
    return False


def main() -> None:
    needle = sys.argv[1].lower() if len(sys.argv) > 1 else ""
    names = [n for n in global_registry.names() if needle in n.lower()]
    shown = sum(1 for name in names if show_one(name))
    print(f"\n{shown}/{len(names)} mutators demonstrated")


if __name__ == "__main__":
    main()
