#!/usr/bin/env python3
"""RQ2 in miniature: the macro fuzzer's long-term bug hunt.

Runs the macro fuzzer (flag sampling + Havoc + shared coverage) against both
simulated compilers, collects unique bugs, and prints a Table-6-style report
with the §5.3-style per-bug details.

Run:  python examples/bug_hunting.py  [steps]
"""

import random
import sys

from repro.analysis.reports import BugReport, BugTracker
from repro.compiler import CLANG_SIM, GCC_SIM, Compiler
from repro.fuzzing.crash import CrashLog
from repro.fuzzing.macro import MacroFuzzer
from repro.fuzzing.seedgen import generate_seeds
from repro.muast.registry import global_registry


def main() -> None:
    steps = int(sys.argv[1]) if len(sys.argv) > 1 else 150
    seeds = generate_seeds(150)
    tracker = BugTracker()
    found = []
    for target in (GCC_SIM, CLANG_SIM):
        compiler = Compiler(*target)
        fuzzer = MacroFuzzer(
            compiler, random.Random(8), seeds, list(global_registry)
        )
        log = CrashLog()
        for i in range(steps):
            step = fuzzer.step()
            record = log.add(step.result, float(i), step.program)
            if record is None:
                continue
            found.append((compiler.name, record, step.mutator))
            tracker.report(
                BugReport(
                    record.bug_id, compiler.name, record.module,
                    record.kind, record.message, step.program,
                )
            )

    print("=== Bugs uncovered ===")
    for compiler_name, record, mutators in found:
        print(f"\n[{compiler_name}] {record.bug_id} "
              f"({record.module}, {record.kind})")
        print(f"  {record.message[:110]}")
        if mutators:
            print(f"  mutation chain: {mutators}")

    print("\n=== Table 6-style report ===")
    print(tracker.render())


if __name__ == "__main__":
    main()
