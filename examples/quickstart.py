#!/usr/bin/env python3
"""Quickstart: generate a mutator with MetaMut and apply it to a C program.

Walks the three stages of Figure 1 — invention, implementation synthesis,
validation & refinement — then applies the resulting mutator to a small seed
program and compiles the mutant with the simulated GCC.

Run:  python examples/quickstart.py
"""

import random

from repro.compiler import Compiler, GCC_SIM
from repro.metamut import MetaMut
from repro.muast import apply_mutator
from repro.muast.registry import global_registry

SEED_PROGRAM = """\
int total = 3;
int helper(int a, int b) {
  if (a > b && b != 0) { return a - b; }
  return b - a + total;
}
int main(void) {
  int i, acc = 0;
  for (i = 0; i < 8; i++) acc += helper(i, total);
  printf("%d\\n", acc);
  return 0;
}
"""


def main() -> None:
    # --- 1-3. One full MetaMut invocation (invention → synthesis →
    #          validation & refinement with the simulated GPT-4). ----------
    metamut = MetaMut()
    rng = random.Random(7)
    record = metamut.generate_one(rng, previously_generated=set())
    while record.status != "valid":
        record = metamut.generate_one(rng, {record.name})

    invention = record.invention
    print("=== MetaMut generated a mutator ===")
    print(f"name:        {invention.name}")
    print(f"description: {invention.description}")
    print(f"QA rounds:   {record.rounds}  "
          f"(bugs fixed by the refinement loop: {sum(record.fixed.values())})")
    print(f"cost:        {record.cost.total_tokens} tokens "
          f"≈ ${record.cost.usd:.2f}")

    # --- Apply the validated mutator to a seed program. ------------------
    info = global_registry.get(invention.registry_name)
    mutator = info.create(random.Random(42))
    outcome = apply_mutator(mutator, SEED_PROGRAM)
    if not outcome.changed:
        outcome = apply_mutator(info.create(random.Random(43)), SEED_PROGRAM)

    print("\n=== Mutant ===")
    print(outcome.mutant_text or SEED_PROGRAM)

    # --- Compile the mutant with the simulated GCC-14. --------------------
    compiler = Compiler(*GCC_SIM)
    result = compiler.compile(outcome.mutant_text or SEED_PROGRAM)
    print("=== Compile result ===")
    if result.crashed:
        failure = result.crash or result.hang
        print(f"COMPILER BUG! {failure.bug_id}: {failure.message}")
    elif result.ok:
        print(f"compiled OK — {len(result.coverage)} branch edges covered")
    else:
        print("did not compile:", result.diagnostics[:1])


if __name__ == "__main__":
    main()
