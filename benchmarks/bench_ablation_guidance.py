"""Ablation: coverage guidance in μCFuzz (Algorithm 1's br_cover check).

Algorithm 1 keeps a mutant only if it covers a new branch, which is what
lets mutations *stack*: the paper's deep bugs (GCC #111819 took ~16 rounds
of mutations) are reachable only through the grown pool.  The ablation
replaces the keep-condition with "never keep" (pure first-order mutation of
the seeds) and compares pool depth and unique crashes under the same budget.
"""

import random

from repro.compiler import Compiler, GCC_SIM
from repro.fuzzing.campaign import run_campaign
from repro.fuzzing.mucfuzz import MuCFuzz
from repro.fuzzing.seedgen import generate_seeds
from repro.muast.registry import global_registry

STEPS = 110


class UnguidedMuCFuzz(MuCFuzz):
    """μCFuzz without the coverage feedback (the pool never grows)."""

    name = "uCFuzz.unguided"

    def keep_if_new_coverage(self, text, result, parent, mutator):
        return False


def _run(cls, seed=31):
    compiler = Compiler(*GCC_SIM)
    seeds = generate_seeds(120)
    fuzzer = cls(
        compiler, random.Random(seed), seeds, global_registry.supervised()
    )
    result = run_campaign(fuzzer, steps=STEPS)
    return fuzzer, result


def test_ablation_coverage_guidance(benchmark):
    guided_fuzzer, guided = _run(MuCFuzz)
    unguided_fuzzer, unguided = _run(UnguidedMuCFuzz)
    benchmark.pedantic(guided_fuzzer.step, rounds=2)

    depth = max(e.generation for e in guided_fuzzer.pool.entries)
    print("\nAblation — coverage guidance (Algorithm 1's keep condition)")
    print(f"guided:   coverage={guided.final_coverage:6d}  "
          f"pool 120 -> {len(guided_fuzzer.pool)} (max generation {depth})  "
          f"unique crashes={len(guided.crashes)}")
    print(f"unguided: coverage={unguided.final_coverage:6d}  "
          f"pool stays at {len(unguided_fuzzer.pool)} (generation 0 only)   "
          f"unique crashes={len(unguided.crashes)}")
    print("guidance buys *depth*: stacked mutants are what reach the deep "
          "bug population (the paper's #111819 needed ~16 rounds).")

    # Guidance grows the pool with higher-generation mutants; without it the
    # search space collapses to first-order mutants of the seeds.  (Crash
    # counts at this budget are too noisy to assert on; the depth is the
    # structural difference that matters downstream.)
    assert len(guided_fuzzer.pool) > 120
    assert depth >= 2
    assert len(unguided_fuzzer.pool) == 120
    assert all(e.generation == 0 for e in unguided_fuzzer.pool.entries)
