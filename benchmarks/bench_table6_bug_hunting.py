"""Table 6: the macro fuzzer's field experiment (RQ2).

Paper (8 months, GCC-12/14 + Clang-17/18): 131 reported (81 Clang, 50 GCC),
129 confirmed, 35 fixed, 13 duplicates; modules 48/45/22/16
(FE/IR/Opt/BE); consequences 111 asserts / 9 segfaults / 11 hangs.
The bench runs the same macro fuzzer at laptop scale and reports the same
rows (counts scale with the step budget; the *distribution* is the shape).
"""

PAPER = {
    "Reported": (81, 50, 131),
    "Confirmed": (81, 43, 129)[:3],
    "Front-End": (32, 16, 48),
    "IR Generation": (27, 18, 45),
    "Optimization": (8, 14, 22),
    "Back-End": (14, 2, 16),
    "Assertion Failure": (71, 40, 111),
    "Segmentation Fault": (3, 6, 9),
    "Hang": (7, 4, 11),
}


def test_table6_bug_hunting(benchmark, rq2_hunt):
    tracker, logs = rq2_hunt
    table = benchmark(tracker.table6)

    print("\nTable 6 — reported compiler bugs (paper C/G/T | measured C/G/T)")
    for row, paper in PAPER.items():
        measured = (
            table["Clang"].get(row, 0),
            table["GCC"].get(row, 0),
            table["Total"].get(row, 0),
        )
        print(f"{row:22s} paper {paper!s:>14}  measured {measured}")
    for other in ("Fixed", "Duplicate"):
        measured = (
            table["Clang"].get(other, 0),
            table["GCC"].get(other, 0),
            table["Total"].get(other, 0),
        )
        print(f"{other:22s} paper {'(18, 17, 35)' if other == 'Fixed' else '(5, 8, 13)':>14}  measured {measured}")

    total = table["Total"]["Reported"]
    assert total >= 10, "the hunt should surface a real bug population"
    # Shape: most bugs are confirmed; assertion failures dominate.
    assert table["Total"]["Confirmed"] >= 0.85 * total
    assert table["Total"]["Assertion Failure"] >= 0.5 * total
    # Bugs span multiple compiler modules (the semantic-awareness claim:
    # a majority pass the front end).
    deep = (
        table["Total"]["IR Generation"]
        + table["Total"]["Optimization"]
        + table["Total"]["Back-End"]
    )
    assert deep >= 0.35 * total
    modules_hit = sum(
        1
        for m in ("Front-End", "IR Generation", "Optimization", "Back-End")
        if table["Total"][m] > 0
    )
    assert modules_hit >= 3
