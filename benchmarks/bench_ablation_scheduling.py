"""Scheduling ablation: μCFuzz.s with the fitness-proportional bandit vs
the paper's uniform mutator ordering, on the Fig. 7 coverage-trend setup.

The scheduled arm runs the identical campaign cells with a
:class:`~repro.fuzzing.schedule.MutatorScheduler` seeded from each cell
seed; the uniform arm tracks the same per-mutator yield counters
(``mutator_stats=True``) without letting them steer the order, so both
arms' snapshots carry the same zero-filled per-mutator schema and the only
delta is the schedule itself.
"""

import random

import pytest

from repro.fuzzing.campaign import Campaign, make_fuzzer
from repro.fuzzing.schedule import MUTATOR_STAT_KEYS, MutatorScheduler

#: Fuzzing steps per cell: long enough for the bandit to learn the arms
#: (at short horizons the schedule is indistinguishable from noise).
ABLATION_STEPS = 300


@pytest.fixture(scope="module")
def ablation_results(compilers, seeds, registry):
    arms = {}
    for label, schedule in (("uniform", False), ("scheduled", True)):
        campaign = Campaign(
            compilers, seeds, registry, steps=ABLATION_STEPS,
            schedule=schedule, mutator_stats=True,
        )
        arms[label] = campaign.run(("uCFuzz.s",))
    return arms


def test_ablation_scheduling(benchmark, ablation_results, compilers, seeds, registry):
    # Time one scheduled step (the bandit reorder rides on the step path).
    fuzzer = make_fuzzer(
        "uCFuzz.s", compilers[0], seeds[:40], registry, random.Random(0),
        scheduler=MutatorScheduler.from_cell_seed(0),
    )
    benchmark.pedantic(fuzzer.step, rounds=3, iterations=1)

    uniform, scheduled = (
        ablation_results["uniform"], ablation_results["scheduled"]
    )
    print("\nScheduling ablation — uCFuzz.s final coverage "
          f"({ABLATION_STEPS} steps)")
    print(f"{'compiler':12s}{'uniform':>10}{'scheduled':>11}{'delta':>8}")
    for uni, sch in zip(uniform, scheduled):
        assert uni.compiler == sch.compiler
        delta = sch.final_coverage - uni.final_coverage
        print(f"{uni.compiler:12s}{uni.final_coverage:>10d}"
              f"{sch.final_coverage:>11d}{delta:>+8d}")
        # The ablation's headline: scheduling never loses coverage.
        assert sch.final_coverage >= uni.final_coverage

    # Both arms snapshot the identical zero-filled per-mutator schema.
    expected = {m.name for m in registry.supervised()}
    for arm in (uniform, scheduled):
        for cell in arm:
            table = cell.stats["mutator_stats"]
            assert set(table) == expected
            assert all(
                set(rec) == set(MUTATOR_STAT_KEYS) for rec in table.values()
            )

    # The scheduled arm concentrates attempts on high-yield mutators: its
    # attempt distribution is measurably less uniform than the uniform arm's.
    def spread(cell):
        counts = sorted(
            rec["attempts"] for rec in cell.stats["mutator_stats"].values()
        )
        return counts[-1] - counts[0]

    assert sum(spread(c) for c in scheduled) > sum(spread(c) for c in uniform)
