"""Fuzzer throughput: steps/sec of the μCFuzz hot path, four ways.

Not a paper table — this bench tracks the reproduction's own perf
trajectory.  It runs the same μCFuzz.s campaign uncached, with the shared
front-end cache, fully incremental (dirty-region front end plus
function-granular middle-end replay), and through the cross-step compile
session (content-keyed middle-end memoization + fused local pass + batched
per-step compilation) — identical RNG seed, hence an identical step
sequence — and records steps/sec, the speedups, cache/session hit-rates,
and the per-stage timing breakdown (one uniform zero-filled stage-key set
per arm) to ``BENCH_throughput.json``.

Run standalone for the full acceptance measurement::

    PYTHONPATH=src python benchmarks/bench_fuzzer_throughput.py --steps 600

or with a tiny budget via the ``bench-smoke`` script (tier-2 CI).
"""

import os

from repro.fuzzing.throughput import STAGE_KEYS, measure_throughput, write_report

#: Pytest-collected runs use a reduced budget; the CLI defaults to 600.
STEPS = int(os.environ.get("BENCH_THROUGHPUT_STEPS", "150"))


def test_fuzzer_throughput(benchmark):
    report = measure_throughput(steps=STEPS)
    # Time one representative session step for the pytest-benchmark table.
    from repro.fuzzing.seedgen import generate_seeds
    from repro.fuzzing.throughput import _build_fuzzer

    fuzzer = _build_fuzzer(
        "uCFuzz.s", generate_seeds(40), 2024, True, incremental=True,
        session=True, fuse_passes=True, batch_compile=True,
    )
    benchmark(fuzzer.step)

    write_report(report)
    print(
        f"\nThroughput ({STEPS} steps): "
        f"{report['uncached']['steps_per_sec']} steps/sec uncached, "
        f"{report['cached']['steps_per_sec']} steps/sec cached, "
        f"{report['incremental']['steps_per_sec']} steps/sec incremental, "
        f"{report['session']['steps_per_sec']} steps/sec session+fused "
        f"({report['speedup_session']}x, "
        f"cache hit-rate {report['cache_hit_rate']:.2%}, "
        f"session hit-rate {report['session_hit_rate']:.2%})"
    )

    # The caches must engage on the hot path and must not change behaviour
    # (coverage/pool equality across all four arms is asserted inside
    # measure_throughput).
    assert report["cache_hit_rate"] > 0
    assert report["incremental"]["stats"]["cache_incremental_hits"] > 0
    assert report["incremental"]["stats"]["middle_incremental_hits"] > 0
    assert report["session"]["stats"]["middle_session_hits"] > 0
    assert report["session"]["stats"]["fused_pass_runs"] > 0
    assert report["speedup"] > 1.0
    assert report["speedup_incremental"] > report["speedup"]
    # Cross-arm session ordering is budget-dependent (keying overhead
    # amortizes over steps); the hard floor is beating the uncached arm.
    assert report["speedup_session"] > 1.0
    # Uniform per-arm schema: every arm reports the same stage-key set.
    for arm in ("uncached", "cached", "incremental", "session"):
        assert set(STAGE_KEYS) <= set(report[arm]["profile"]["stage_timings"])


if __name__ == "__main__":
    from repro.fuzzing.throughput import main

    raise SystemExit(main())
