"""Fuzzer throughput: steps/sec and cache hit-rate of the μCFuzz hot path.

Not a paper table — this bench tracks the reproduction's own perf
trajectory.  It runs the same μCFuzz.s campaign with the shared front-end
cache off and on (identical RNG seed, hence an identical step sequence) and
records steps/sec, the speedup, and the cache hit-rate to
``BENCH_throughput.json``.

Run standalone for the full acceptance measurement::

    PYTHONPATH=src python benchmarks/bench_fuzzer_throughput.py --steps 600

or with a tiny budget via the ``bench-smoke`` script (tier-2 CI).
"""

import os

from repro.fuzzing.throughput import measure_throughput, write_report

#: Pytest-collected runs use a reduced budget; the CLI defaults to 600.
STEPS = int(os.environ.get("BENCH_THROUGHPUT_STEPS", "150"))


def test_fuzzer_throughput(benchmark):
    report = measure_throughput(steps=STEPS)
    # Time one representative cached step for the pytest-benchmark table.
    from repro.fuzzing.seedgen import generate_seeds
    from repro.fuzzing.throughput import _build_fuzzer

    fuzzer = _build_fuzzer("uCFuzz.s", generate_seeds(40), 2024, True)
    benchmark(fuzzer.step)

    write_report(report)
    print(
        f"\nThroughput ({STEPS} steps): "
        f"{report['uncached']['steps_per_sec']} steps/sec uncached, "
        f"{report['cached']['steps_per_sec']} steps/sec cached "
        f"({report['speedup']}x, hit-rate {report['cache_hit_rate']:.2%})"
    )

    # The cache must engage on the hot path and must not change behaviour.
    assert report["cache_hit_rate"] > 0
    assert report["cached"]["final_coverage"] == report["uncached"]["final_coverage"]
    assert report["speedup"] > 1.0


if __name__ == "__main__":
    from repro.fuzzing.throughput import main

    raise SystemExit(main())
