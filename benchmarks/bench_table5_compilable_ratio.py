"""Table 5: compilable test programs generated within the 24-hour run.

Paper:  AFL++ 3.53%, GrayC 98.99%, Csmith 99.86%, YARPGen 99.83%,
uCFuzz.u 72.00%, uCFuzz.s 74.46%; totals 2.15M/983k/31k/76k/1.07M/972k.
"""

PAPER = {
    "AFL++": (3.53, 2_154_621),
    "GrayC": (98.99, 983_078),
    "Csmith": (99.86, 31_381),
    "YARPGen": (99.83, 75_785),
    "uCFuzz.u": (72.00, 1_070_368),
    "uCFuzz.s": (74.46, 972_002),
}


def _ratios(results):
    out = {}
    for r in results:
        compiled, total = out.get(r.fuzzer, (0, 0))
        out[r.fuzzer] = (compiled + r.compiled, total + r.total)
    return {
        name: 100.0 * compiled / total
        for name, (compiled, total) in out.items()
    }


def test_table5_compilable_mutants(benchmark, rq1_results):
    ratios = benchmark(_ratios, rq1_results)
    throughput = {r.fuzzer: r.throughput_total for r in rq1_results}

    print("\nTable 5 — compilable mutant ratio and modeled 24h throughput")
    print(f"{'tool':10s}{'paper %':>9}{'measured %':>12}{'paper total':>14}{'modeled total':>15}")
    for name, (paper_pct, paper_total) in PAPER.items():
        print(
            f"{name:10s}{paper_pct:>9.2f}{ratios[name]:>12.2f}"
            f"{paper_total:>14,}{throughput[name]:>15,}"
        )

    # Shape: the ordering of semantic awareness.
    assert ratios["AFL++"] < 30  # byte havoc breaks most programs
    assert ratios["Csmith"] > 99 and ratios["YARPGen"] > 99
    assert ratios["GrayC"] > 95
    assert ratios["uCFuzz.s"] > ratios["AFL++"]
    assert ratios["uCFuzz.u"] > ratios["AFL++"]
    # Generators are (at least as) clean as the mutation-based tools.
    assert ratios["Csmith"] >= ratios["uCFuzz.s"] - 1
    # Modeled throughput reproduces the paper's ordering.
    assert throughput["AFL++"] > throughput["uCFuzz.s"] > throughput["YARPGen"]
    assert throughput["YARPGen"] > throughput["Csmith"]
