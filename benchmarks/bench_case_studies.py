"""§2 / §5.3 case studies: each famous bug reproduced from its mutant.

Clang #63762 (Ret2V), GCC #111820 (vectorizer hang, -O3 -fno-tree-vrp),
GCC #111819 (__imag/fold_offsetof), Clang #69213 (StructToInt), and the
§5.2 exclusive strlen/verify_range crash.
"""

import pytest

from repro.compiler import CLANG_SIM, GCC_SIM, Compiler

CASES = [
    (
        "clang-63762", CLANG_SIM, 2, (),
        """
void foo(int x[64], int y[64]) {
  int i;
  for (i = 0; i < 64; i++) { x[i] += y[i] & 3; }
  if (x[0] > y[1]) goto gt;
  if (x[1] < y[0]) goto lt;
  ;
gt:
  ;
lt:
  ;
}
int arrs[64];
int main(void) { foo(arrs, arrs); return 0; }
""",
    ),
    (
        "gcc-111820", GCC_SIM, 3, ("-fno-tree-vrp",),
        """
int r;
int r_0;
void f(void) {
  int n = 0;
  while (--n) {
    r_0 += r;
    r += r; r += r; r += r; r += r; r += r;
  }
}
int main(void) { f(); return 0; }
""",
    ),
    (
        "gcc-111819", GCC_SIM, 0, (),
        """
long long combinedVar_1[4];
int *bar(void) {
  return (int *)&__imag (*(_Complex double *)((char *)combinedVar_1 + 16));
}
int main(void) { return 0; }
""",
    ),
    (
        "clang-69213", CLANG_SIM, 2, (),
        """
struct s2 { int a; int b; };
void foo(int *ptr) {
  *ptr = (int) { {}, 0 };
}
int main(void) { return 0; }
""",
    ),
    (
        "gcc-strlen-verify-range", GCC_SIM, 2, (),
        """
const volatile static char buffer[32];
int test4(void) { return sprintf(buffer, "%s", buffer); }
void main_test(void) {
  memset(buffer, 'A', 32);
  if (test4() != 3) abort();
}
int main(void) { main_test(); return 0; }
""",
    ),
]


@pytest.mark.parametrize("bug_id,target,opt,flags,mutant", CASES)
def test_case_study_reproduces(benchmark, bug_id, target, opt, flags, mutant):
    compiler = Compiler(*target)
    result = benchmark.pedantic(
        compiler.compile,
        args=(mutant,),
        kwargs={"opt_level": opt, "flags": flags},
        rounds=1,
        iterations=1,
    )
    failure = result.crash or result.hang
    assert failure is not None, f"{bug_id} did not reproduce"
    assert failure.bug_id == bug_id
    print(f"\n{bug_id}: {failure.module} — {failure.message[:100]}")
