"""Figure 8: Venn diagram of discovered unique crashes.

Paper: 125 unique crashes total; μCFuzz.s 90, μCFuzz.u 59, AFL++ 19,
GrayC 13, YARPGen 2, Csmith 0; μCFuzz exclusively reported 72.8%.
"""

from repro.analysis.venn import (
    exclusive_counts, exclusive_to_group, union_size, venn_counts,
)

PAPER_TOTALS = {
    "uCFuzz.s": 90, "uCFuzz.u": 59, "AFL++": 19,
    "GrayC": 13, "YARPGen": 2, "Csmith": 0,
}


def _crash_sets(results):
    sets = {}
    for r in results:
        sets.setdefault(r.fuzzer, set()).update(r.crashes.signatures())
    return sets


def test_fig8_unique_crash_venn(benchmark, rq1_results):
    sets = _crash_sets(rq1_results)
    regions = benchmark(venn_counts, sets)

    print("\nFigure 8 — unique crashes per fuzzer (both compilers pooled)")
    print(f"{'fuzzer':10s}{'paper':>7}{'measured':>10}{'exclusive':>11}")
    exclusive = exclusive_counts(sets)
    for name, paper in PAPER_TOTALS.items():
        print(
            f"{name:10s}{paper:>7}{len(sets.get(name, set())):>10}"
            f"{exclusive.get(name, 0):>11}"
        )
    total = union_size(sets)
    mu_only = exclusive_to_group(sets, ["uCFuzz.s", "uCFuzz.u"])
    print(f"union of unique crashes: 125 -> {total}")
    share = 100 * mu_only / max(total, 1)
    print(f"exclusively uCFuzz:    72.8% -> {share:.1f}%")
    print("venn regions:", {tuple(sorted(k)): v for k, v in regions.items()})

    # Shape: μCFuzz.s finds the most, Csmith finds nothing, μCFuzz dominates.
    assert len(sets["uCFuzz.s"]) >= len(sets["uCFuzz.u"])
    assert len(sets["Csmith"]) == 0
    assert len(sets["uCFuzz.s"]) > len(sets["AFL++"])
    assert len(sets["uCFuzz.s"]) > len(sets["GrayC"])
    assert mu_only / max(total, 1) > 0.4
