"""Table 2: per-mutator generation cost (tokens / QA rounds / time).

Paper means: invention 1,158 tok; implementation 2,501 tok; bug-fixing 4,935
tok; total 8,595 tok ≈ $0.5/mutator; 6 QA rounds; 346 s total.
"""

import random

from repro.llm.costs import sample_invention_tokens

PAPER_MEANS = {
    ("Tokens", "Invention"): 1158,
    ("Tokens", "Implementation"): 2501,
    ("Tokens", "Bug-Fixing"): 4935,
    ("Tokens", "Total"): 8595,
    ("QA", "Total"): 6.0,
    ("Time", "Total"): 346,
}


def test_table2_generation_cost(benchmark, metamut_campaign):
    table = metamut_campaign.ledger.table2()
    benchmark(sample_invention_tokens, random.Random(0))

    print("\nTable 2 — generation cost of one mutator")
    print(f"{'Metric':8s}{'Stage':16s}{'min':>8}{'max':>8}{'median':>8}{'mean':>8}  paper-mean")
    for metric, stages in table.items():
        for stage, s in stages.items():
            paper = PAPER_MEANS.get((metric, stage), "")
            print(
                f"{metric:8s}{stage:16s}{s['min']:>8.0f}{s['max']:>8.0f}"
                f"{s['median']:>8.0f}{s['mean']:>8.0f}  {paper}"
            )
    print(f"mean cost per mutator: ${metamut_campaign.ledger.mean_usd():.2f} (paper ~$0.50)")

    tokens = table["Tokens"]
    # Shape: implementation costs more than invention; bug-fixing dominates.
    assert tokens["Implementation"]["mean"] > tokens["Invention"]["mean"]
    assert tokens["Total"]["mean"] > 4000
    assert 0.2 < metamut_campaign.ledger.mean_usd() < 1.0
    # The majority of total time is spent on bug fixing (paper: 81.2%).
    time = table["Time"]
    assert time["Bug-Fixing"]["mean"] > time["Invention"]["mean"]
