"""Table 4: unique crashes by compiler component per fuzzer.

Paper (both compilers pooled):
            Front-End  IR  Opt  Back-End  Total
AFL++              15   4    0         0     19
GrayC               5   3    5         0     13
Csmith              0   0    0         0      0
YARPGen             0   0    2         0      2
uCFuzz.u           15  26   10         8     59
uCFuzz.s           24  31   24        11     90
"""

MODULES = ("front-end", "ir-gen", "optimization", "back-end")
PAPER = {
    "AFL++": (15, 4, 0, 0),
    "GrayC": (5, 3, 5, 0),
    "Csmith": (0, 0, 0, 0),
    "YARPGen": (0, 0, 2, 0),
    "uCFuzz.u": (15, 26, 10, 8),
    "uCFuzz.s": (24, 31, 24, 11),
}


def _pooled_modules(results, fuzzer):
    out = {m: 0 for m in MODULES}
    seen = set()
    for r in results:
        if r.fuzzer != fuzzer:
            continue
        for sig, rec in r.crashes.records.items():
            if sig in seen:
                continue
            seen.add(sig)
            out[rec.module] += 1
    return out


def test_table4_crash_module_distribution(benchmark, rq1_results):
    rows = {
        name: benchmark.pedantic(
            _pooled_modules, args=(rq1_results, name), rounds=1
        )
        if name == "uCFuzz.s"
        else _pooled_modules(rq1_results, name)
        for name in PAPER
    }

    print("\nTable 4 — unique crashes by compiler component (paper | measured)")
    print(f"{'fuzzer':10s}{'Front-End':>14}{'IR':>10}{'Opt':>10}{'Back-End':>12}{'Total':>10}")
    for name, paper in PAPER.items():
        m = rows[name]
        cells = ""
        for i, module in enumerate(MODULES):
            cells += f"{paper[i]:>6}|{m[module]:<4}"
        total = sum(m.values())
        print(f"{name:10s}  {cells}{sum(paper):>4}|{total:<4}")

    # Shape assertions.
    mu_s, mu_u = rows["uCFuzz.s"], rows["uCFuzz.u"]
    afl, grayc = rows["AFL++"], rows["GrayC"]
    assert sum(rows["Csmith"].values()) == 0
    # Only μCFuzz (and GrayC/YARPGen for opt) get past the front end at depth;
    # AFL++'s crashes concentrate in the front end.
    assert afl["front-end"] >= afl["optimization"]
    assert afl["back-end"] == 0
    # μCFuzz reaches every module, and deeper than everyone else.
    deep = lambda m: m["ir-gen"] + m["optimization"] + m["back-end"]
    assert deep(mu_s) > deep(afl) and deep(mu_s) > deep(grayc)
    assert deep(mu_u) > deep(afl)
    assert sum(mu_s.values()) >= sum(mu_u.values())
