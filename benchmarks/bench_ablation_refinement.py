"""Ablation: how much does the validation-refinement loop buy?

The paper's §3.2 observes "nearly half of the mutators are correct on the
first attempt, and many others can be automatically corrected during the
refinement loop"; §4.1 reports 27/50 valid M_u mutators were invalid before
refinement.  The ablation disables the repair loop (max_attempts = 1) and
compares the per-invocation validity rate.
"""

import random

from repro.llm.client import LLMClient
from repro.llm.costs import MutatorCost
from repro.llm.model import SimulatedLLM
from repro.metamut.refinement import refine
from repro.metamut.testgen import tests_for as programs_for
from repro.muast.registry import global_registry

RUNS = 60


def _validity_rate(max_attempts: int, seed: int = 7) -> float:
    """Fraction of valid-fated drafts that pass with the given budget."""
    client = LLMClient(SimulatedLLM(), failure_rate=0.0)
    rng = random.Random(seed)
    model = client.model
    passed = 0
    for _ in range(RUNS):
        invention = model.invent(rng, set())
        if invention.fate != "valid":
            continue  # ablate over the drafts the loop could in principle fix
        impl = model.synthesize(rng, invention)
        tests = programs_for(invention.structure, invention.description)
        cost = MutatorCost(name=invention.name)
        outcome = refine(client, impl, tests, rng, cost, max_attempts=max_attempts)
        passed += int(outcome.passed)
    return passed


def test_ablation_refinement_loop(benchmark):
    with_loop = _validity_rate(max_attempts=27)
    without_loop = benchmark.pedantic(
        _validity_rate, kwargs={"max_attempts": 1}, rounds=1
    )

    print("\nAblation — the validation-refinement loop")
    print(f"valid drafts accepted with   1 attempt : {without_loop}")
    print(f"valid drafts accepted with  27 attempts: {with_loop}")
    gain = with_loop / max(without_loop, 1)
    print(f"refinement multiplies the yield by ~{gain:.1f}x "
          f"(paper: 27 of 50 valid mutators were broken pre-refinement)")

    # Without the loop, only ~first-draft-correct mutators survive (~46%).
    assert without_loop < with_loop
    assert with_loop >= 1.3 * without_loop
