"""§4.1: the generated-mutator census.

Paper: 68 supervised + 50 unsupervised valid mutators; categories
Variable 16 / Expression 50 / Statement 27 / Function 19 / Type 6;
33 "creative" mutators; ~6 overlapping pairs; unsupervised campaign:
100 invocations, 24 API failures, 50/76 valid (65.8%), invalid census
6 refinement-deaths / 7 mismatched / 10 unthorough / 3 duplicates.
"""

from repro.mutators.catalog import catalog_summary


def test_mutator_census(benchmark, metamut_campaign):
    summary = benchmark(catalog_summary)

    print("\n§4.1 — mutator library census (paper → measured)")
    print(f"total valid mutators:   118 -> {summary.total}")
    print(f"supervised (M_s):        68 -> {summary.supervised}")
    print(f"unsupervised (M_u):      50 -> {summary.unsupervised}")
    for cat, paper in (
        ("Variable", 16), ("Expression", 50), ("Statement", 27),
        ("Function", 19), ("Type", 6),
    ):
        print(f"  {cat:12s} {paper:>3} -> {summary.by_category[cat]}")
    print(f"creative mutators:       33 -> {summary.creative}")
    print(f"overlap pairs:           ~6 -> {len(summary.overlap_pairs)}")

    census = metamut_campaign.invalid_census()
    print("\nunsupervised generation campaign (100 invocations):")
    print(f"  API/system failures:  24 -> {metamut_campaign.api_errors}")
    print(f"  completed:            76 -> {metamut_campaign.completed}")
    valid = len(metamut_campaign.valid)
    rate = 100 * valid / max(metamut_campaign.completed, 1)
    print(f"  valid:          50 (65.8%) -> {valid} ({rate:.1f}%)")
    print(f"  refinement-loop deaths: 6 -> {census.get('refine-death', 0)}")
    print(f"  mismatched impls:       7 -> {census.get('mismatched', 0)}")
    print(f"  unthorough tests:      10 -> {census.get('unthorough', 0)}")
    print(f"  duplicates:             3 -> {census.get('duplicate', 0)}")

    assert summary.total == 118
    assert summary.supervised == 68 and summary.unsupervised == 50
    assert summary.creative == 33
    assert len(summary.overlap_pairs) == 6
    assert 0.5 < valid / metamut_campaign.completed < 0.85
