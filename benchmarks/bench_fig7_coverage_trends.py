"""Figure 7: branch-coverage trends for all six fuzzers on both compilers.

Paper shape: μCFuzz.s > μCFuzz.u > the best baseline (by 5.4-6.1%);
GrayC > AFL++ > Csmith/YARPGen; supervised beats unsupervised by ~2%.
"""

import random

from repro.fuzzing.campaign import make_fuzzer


def _series(results, compiler_name):
    return {
        r.fuzzer: r for r in results if r.compiler == compiler_name
    }


def test_fig7_coverage_trends(benchmark, rq1_results, compilers, seeds, registry):
    # Time one representative fuzzing step.
    fuzzer = make_fuzzer(
        "uCFuzz.s", compilers[0], seeds[:40], registry, random.Random(0)
    )
    benchmark.pedantic(fuzzer.step, rounds=3, iterations=1)

    for compiler in compilers:
        rows = _series(rq1_results, compiler.name)
        print(f"\nFigure 7 — covered branches over virtual 24h ({compiler.name})")
        hours = [t for t, _c in rows["uCFuzz.s"].coverage_trend]
        marks = [0, len(hours) // 4, len(hours) // 2, 3 * len(hours) // 4, -1]
        header = "".join(f"{hours[m]:>9.1f}h" for m in marks)
        print(f"{'fuzzer':10s}{header}{'final':>9}")
        for name, r in sorted(
            rows.items(), key=lambda kv: -kv[1].final_coverage
        ):
            cells = "".join(
                f"{r.coverage_trend[m][1]:>10d}" for m in marks
            )
            print(f"{name:10s}{cells}{r.final_coverage:>9d}")

        # Shape assertions (who wins).
        assert rows["uCFuzz.s"].final_coverage >= rows["uCFuzz.u"].final_coverage
        best_baseline = max(
            rows[n].final_coverage for n in ("AFL++", "GrayC", "Csmith", "YARPGen")
        )
        assert rows["uCFuzz.u"].final_coverage > best_baseline * 0.95
        assert rows["uCFuzz.s"].final_coverage > best_baseline
        # Coverage grows monotonically.
        for r in rows.values():
            values = [c for _t, c in r.coverage_trend]
            assert values == sorted(values)
