"""Ablation: how does the size of the mutator set shape the search space?

GrayC ships 5 hand-written mutators; MetaMut generates 118.  The paper
attributes μCFuzz's wins to the breadth of its generated mutator set.  The
ablation runs μCFuzz with nested subsets of the supervised set (5, 17, 34,
68 mutators) under the same budget.
"""

import random

from repro.compiler import Compiler, GCC_SIM
from repro.fuzzing.mucfuzz import MuCFuzz
from repro.fuzzing.seedgen import generate_seeds
from repro.muast.registry import global_registry

STEPS = 70
SUBSETS = (5, 17, 34, 68)


def _coverage_with(count: int) -> tuple[int, int]:
    compiler = Compiler(*GCC_SIM)
    seeds = generate_seeds(120)
    supervised = sorted(global_registry.supervised(), key=lambda i: i.name)
    fuzzer = MuCFuzz(
        compiler, random.Random(17), seeds, supervised[:count]
    )
    for _ in range(STEPS):
        fuzzer.step()
    return len(fuzzer.coverage), len(fuzzer.crashes) if hasattr(fuzzer, "crashes") else 0


def test_ablation_mutator_set_size(benchmark):
    results = {}
    for count in SUBSETS:
        if count == SUBSETS[0]:
            results[count] = benchmark.pedantic(
                _coverage_with, args=(count,), rounds=1
            )
        else:
            results[count] = _coverage_with(count)

    print("\nAblation — mutator-set size vs coverage (same step budget)")
    print(f"{'|M|':>5}{'coverage':>10}")
    for count in SUBSETS:
        print(f"{count:>5}{results[count][0]:>10}")

    # More mutators = a broader search space; the full set should be at
    # least as good as a GrayC-sized subset and strictly better overall.
    assert results[68][0] >= results[5][0]
    best_small = max(results[5][0], results[17][0])
    assert results[68][0] >= 0.98 * best_small
