"""Figure 9: unique-crash discovery trends over the virtual 24 hours.

Paper shape (per compiler): μCFuzz.s ends highest (44/46), then μCFuzz.u
(26/33), then AFL++ / GrayC in the teens, YARPGen ≤2, Csmith flat at 0.
"""

from repro.fuzzing.crash import CrashLog


def _trend_at(crashes: CrashLog, hour: float) -> int:
    return sum(1 for t in crashes.first_seen.values() if t <= hour)


def test_fig9_unique_crash_trends(benchmark, rq1_results, compilers):
    sample = rq1_results[0].crashes
    benchmark(_trend_at, sample, 12.0)

    for compiler in compilers:
        rows = {r.fuzzer: r for r in rq1_results if r.compiler == compiler.name}
        print(f"\nFigure 9 — unique crashes over virtual 24h ({compiler.name})")
        hours = (6.0, 12.0, 18.0, 24.0)
        print(f"{'fuzzer':10s}" + "".join(f"{h:>8.0f}h" for h in hours))
        for name, r in sorted(rows.items(), key=lambda kv: -len(kv[1].crashes)):
            cells = "".join(f"{_trend_at(r.crashes, h):>9d}" for h in hours)
            print(f"{name:10s}{cells}")

        # Shape: discovery curves are non-decreasing; Csmith stays at zero;
        # μCFuzz variants end on top.
        for r in rows.values():
            counts = [_trend_at(r.crashes, h) for h in hours]
            assert counts == sorted(counts)
        assert _trend_at(rows["Csmith"].crashes, 24.0) == 0
        mu_best = max(
            _trend_at(rows["uCFuzz.s"].crashes, 24.0),
            _trend_at(rows["uCFuzz.u"].crashes, 24.0),
        )
        baseline_best = max(
            _trend_at(rows[n].crashes, 24.0)
            for n in ("AFL++", "GrayC", "Csmith", "YARPGen")
        )
        assert mu_best >= baseline_best
