"""Table 3: request/response time of a single mutator generation.

Paper: wait-for-response 11/123/46/43 s; prepare-for-request 0/69/9/17 s.
"""

import random

from repro.llm.costs import sample_wait_seconds

PAPER = {
    "Wait for Response (s)": {"min": 11, "max": 123, "median": 46, "mean": 43},
    "Prepare for Request (s)": {"min": 0, "max": 69, "median": 9, "mean": 17},
}


def test_table3_request_response_time(benchmark, metamut_campaign):
    table = metamut_campaign.ledger.table3()
    benchmark(sample_wait_seconds, random.Random(0))

    print("\nTable 3 — request/response time of a single mutator")
    print(f"{'':26s}{'min':>7}{'max':>7}{'median':>7}{'mean':>7}   paper (min/max/med/mean)")
    for row, s in table.items():
        p = PAPER[row]
        print(
            f"{row:26s}{s['min']:>7.0f}{s['max']:>7.0f}{s['median']:>7.0f}"
            f"{s['mean']:>7.0f}   {p['min']}/{p['max']}/{p['median']}/{p['mean']}"
        )

    waits = table["Wait for Response (s)"]
    prepares = table["Prepare for Request (s)"]
    # Shape: waiting on the LLM dominates request preparation.
    assert waits["mean"] > prepares["mean"]
    assert 11 <= waits["min"] and waits["max"] <= 123
