"""Table 1: bugs fixed by the validation-refinement loop, by category.

Paper (for M_u): #1 not-compile 55, #2 hang 0, #3 crash 4, #4 no-output 11,
#5 no-rewrite 1, #6 compile-error mutant 36 — 107 in total.
"""

import random

from repro.llm.faults import sample_faults

GOAL_LABELS = {
    1: "u not compile",
    2: "u hangs",
    3: "u crashes",
    4: "u outputs nothing",
    5: "u does not rewrite",
    6: "u creates compile-error mutant",
}

PAPER = {1: 55, 2: 0, 3: 4, 4: 11, 5: 1, 6: 36}


def test_table1_refinement_fix_census(benchmark, metamut_campaign):
    table = metamut_campaign.table1()
    benchmark(sample_faults, random.Random(0))

    print("\nTable 1 — bugs fixed by the refinement loop (M_u campaign)")
    print(f"{'#':>2} {'Validation Goal Violation':34s} {'paper':>6} {'measured':>9}")
    for goal in range(1, 7):
        print(
            f"{goal:>2} {GOAL_LABELS[goal]:34s} {PAPER[goal]:>6} "
            f"{table[goal]:>9}"
        )
    total = sum(table.values())
    print(f"{'':>2} {'Total':34s} {sum(PAPER.values()):>6} {total:>9}")
    print(
        f"faulty drafts among valid mutators: "
        f"{metamut_campaign.faulty_drafts()}/{len(metamut_campaign.valid)} "
        f"(paper: 27/50)"
    )

    # Shape assertions: the dominant categories match the paper.
    assert table[1] == max(table.values())  # not-compiling dominates
    assert table[6] >= sorted(table.values())[-2] or table[6] >= table[4]
    assert table[2] == 0  # hang faults are never auto-fixed
    assert total >= 40
