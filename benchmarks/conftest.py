"""Shared fixtures for the benchmark harness.

Each bench regenerates one of the paper's tables or figures.  The expensive
campaigns (the RQ1 six-fuzzer comparison, the MetaMut generation run, the
macro-fuzzer bug hunt) are computed once per session and shared; the
``benchmark`` fixture times a representative unit of each experiment so that
``pytest benchmarks/ --benchmark-only`` both measures and reports.

Scale note: the paper's RQ1 burns 720 CPU-days and RQ2 eight months; the
benches run the same code paths at laptop scale (hundreds of fuzzing steps
mapped onto the virtual 24-hour axis).  EXPERIMENTS.md records the resulting
paper-vs-measured comparison.
"""

from __future__ import annotations

import random

import pytest

import repro.mutators  # noqa: F401
from repro.compiler import CLANG_SIM, GCC_SIM, Compiler
from repro.fuzzing.campaign import Campaign, FUZZER_NAMES
from repro.fuzzing.seedgen import generate_seeds
from repro.metamut import MetaMut
from repro.muast.registry import global_registry

#: Fuzzing steps per fuzzer/compiler pair in the RQ1 campaign bench.
RQ1_STEPS = 360
#: Macro-fuzzer steps per compiler in the RQ2 bench.
RQ2_STEPS = 420


@pytest.fixture(scope="session")
def registry():
    return global_registry


@pytest.fixture(scope="session")
def seeds():
    return generate_seeds(300)


@pytest.fixture(scope="session")
def compilers():
    return [Compiler(*GCC_SIM), Compiler(*CLANG_SIM)]


@pytest.fixture(scope="session")
def rq1_results(compilers, seeds, registry):
    """The six-fuzzer × two-compiler campaign behind Figs. 7-9, Tables 4-5."""
    campaign = Campaign(compilers, seeds, registry, steps=RQ1_STEPS)
    return campaign.run(FUZZER_NAMES)


@pytest.fixture(scope="session")
def metamut_campaign():
    """The 100-invocation unsupervised run behind Tables 1-3 and §4.1."""
    return MetaMut().run_unsupervised(100, seed=118)


@pytest.fixture(scope="session")
def rq2_hunt(compilers, seeds, registry):
    """The macro-fuzzer field experiment behind Table 6."""
    from repro.analysis.reports import BugReport, BugTracker
    from repro.fuzzing.crash import CrashLog
    from repro.fuzzing.macro import MacroFuzzer

    tracker = BugTracker()
    logs = {}
    for compiler in compilers:
        fuzzer = MacroFuzzer(
            compiler,
            random.Random(20240427),
            seeds[:120],
            list(registry),
        )
        log = CrashLog()
        for i in range(RQ2_STEPS):
            step = fuzzer.step()
            rec = log.add(step.result, float(i), step.program)
            if rec is not None:
                tracker.report(
                    BugReport(
                        rec.bug_id, compiler.name, rec.module, rec.kind,
                        rec.message,
                    )
                )
        logs[compiler.name] = log
    return tracker, logs
